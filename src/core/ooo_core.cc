#include "core/ooo_core.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

OooCore::OooCore(const CoreConfig &core_config, TracePtr trace_ptr,
                 CoreId core_id)
    : cfg(core_config), trace(std::move(trace_ptr)), coreId(core_id),
      hier(cfg.l1d, cfg.l2, cfg.memAccessCycles,
           cfg.loadFillGapCycles(), cfg.storeDrainGapCycles()),
      bpred(cfg.bpred), btb(cfg.btb)
{
    cfg.validate();
    fatal_if(!trace, "core '%s' constructed without a trace",
             cfg.name.c_str());
    if (cfg.wakeupLatency > cfg.schedDepth)
        warn("core '%s': wakeup latency (%llu) exceeds scheduler depth "
             "(%llu); committed producers are treated as ready",
             cfg.name.c_str(),
             static_cast<unsigned long long>(cfg.wakeupLatency),
             static_cast<unsigned long long>(cfg.schedDepth));
    fetchQueueCap = std::size_t{cfg.width} * (cfg.frontEndDepth + 2);
    fetchQueue.reset(fetchQueueCap);
    rob.reset(cfg.robSize);
    iqPool.resize(cfg.iqSize);
    for (int i = 0; i < static_cast<int>(cfg.iqSize); ++i)
        iqPool[i].freeNext = i + 1 < static_cast<int>(cfg.iqSize)
            ? i + 1 : -1;
    iqFreeHead = 0;
    timedReady.reserve(2 * cfg.iqSize);
    issueReady.reserve(2 * cfg.iqSize);
    deferScratch.reserve(cfg.iqSize);
    staleIq.reserve(cfg.iqSize);
    completions.reserve(cfg.robSize + 4);
    loadReleases.reserve(cfg.lsqSize + 4);
    mshrReleases.reserve(cfg.mshrs + 4);
    renameMap.assign(numArchRegs, RenameRef{});
    if (cfg.modelICache)
        icache = std::make_unique<Cache>(cfg.l1i);
}

void
OooCore::attachContest(ContestHooks *contest_hooks,
                       InjectionStyle injection_style)
{
    hooks = contest_hooks;
    style = injection_style;
}

OooCore::RobEntry &
OooCore::robFor(InstSeq seq)
{
    panic_if(rob.empty(), "robFor(%llu) on empty ROB",
             static_cast<unsigned long long>(seq));
    InstSeq head = rob.front().seq;
    panic_if(seq < head || seq >= head + rob.size(),
             "robFor(%llu) outside window [%llu, %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(head),
             static_cast<unsigned long long>(head + rob.size()));
    return rob[static_cast<std::size_t>(seq - head)];
}

const OooCore::RobEntry &
OooCore::robFor(InstSeq seq) const
{
    return const_cast<OooCore *>(this)->robFor(seq);
}

bool
OooCore::srcStatus(InstSeq producer, Cycles &ready_at) const
{
    if (rob.empty() || producer < rob.front().seq) {
        // The producer has committed; its value is architectural.
        ready_at = Cycles{};
        return true;
    }
    InstSeq head = rob.front().seq;
    panic_if(producer >= head + rob.size(),
             "source producer %llu not yet dispatched",
             static_cast<unsigned long long>(producer));
    const RobEntry &e = rob[static_cast<std::size_t>(producer - head)];
    if (!e.issued)
        return false;
    ready_at = e.valueReadyAt;
    return true;
}

int
OooCore::allocIqSlot()
{
    panic_if(iqFreeHead == -1, "IQ slot pool exhausted past iqSize");
    int slot = iqFreeHead;
    IqSlot &sl = iqPool[slot];
    iqFreeHead = sl.freeNext;
    sl = IqSlot{};
    sl.inUse = true;
    ++iqCount;
    return slot;
}

void
OooCore::freeIqSlot(int slot)
{
    IqSlot &sl = iqPool[slot];
    panic_if(!sl.inUse, "double free of IQ slot %d", slot);
    sl.inUse = false;
    sl.pendingMask = 0;
    sl.nextWaiter[0] = sl.nextWaiter[1] = -1;
    sl.freeNext = iqFreeHead;
    iqFreeHead = slot;
    panic_if(iqCount == 0, "IQ occupancy underflow");
    --iqCount;
}

void
OooCore::wakeWaiters(RobEntry &producer)
{
    int w = producer.firstWaiter;
    producer.firstWaiter = -1;
    while (w != -1) {
        int slot = w >> 1;
        int s = w & 1;
        IqSlot &sl = iqPool[slot];
        int next = sl.nextWaiter[s];
        sl.nextWaiter[s] = -1;
        sl.srcReadyAt[s] = producer.valueReadyAt;
        sl.pendingMask &= static_cast<std::uint8_t>(~(1u << s));
        if (sl.pendingMask == 0)
            timedReady.push({std::max(sl.srcReadyAt[0],
                                      sl.srcReadyAt[1]),
                             sl.seq, slot});
        w = next;
    }
}

void
OooCore::markIqStale(RobEntry &entry)
{
    IssueReady rec{entry.seq, entry.iqSlot};
    // Bounded by live IQ slots and reserve()d to cfg.iqSize at
    // construction, so the sorted insert never reallocates.
    // contest-lint: allow(window-phase)
    staleIq.insert(
        std::upper_bound(staleIq.begin(), staleIq.end(), rec),
        rec);
}

void
OooCore::dropStaleSlot(int slot)
{
    IqSlot &sl = iqPool[slot];
    panic_if(!sl.inUse, "reaping a freed IQ slot %d", slot);
    for (int s = 0; s < 2; ++s) {
        if (!(sl.pendingMask & (1u << s)))
            continue;
        // A pending operand's producer cannot have issued (the wakeup
        // would have cleared the bit) and therefore cannot have
        // committed; unlink this slot from its waiter chain.
        panic_if(rob.empty() || sl.srcProd[s] < rob.front().seq,
                 "stale IQ slot waits on a committed producer");
        RobEntry &pe = robFor(sl.srcProd[s]);
        int want = slot * 2 + s;
        int *link = &pe.firstWaiter;
        while (*link != -1 && *link != want)
            link = &iqPool[*link >> 1].nextWaiter[*link & 1];
        panic_if(*link == -1,
                 "stale IQ slot missing from its waiter chain");
        *link = sl.nextWaiter[s];
        sl.nextWaiter[s] = -1;
    }
    freeIqSlot(slot);
}

void
OooCore::reapStaleBefore(InstSeq before)
{
    while (!staleIq.empty() && staleIq.front().seq < before) {
        dropStaleSlot(staleIq.front().slot);
        staleIq.erase(staleIq.begin());
    }
}

void
OooCore::reforkTo(InstSeq seq)
{
    fatal_if(seq > trace->endSeq(),
             "reforkTo(%llu) beyond trace end",
             static_cast<unsigned long long>(seq));
    fetchQueue.clear();
    rob.clear();
    for (int i = 0; i < static_cast<int>(cfg.iqSize); ++i) {
        iqPool[i] = IqSlot{};
        iqPool[i].freeNext = i + 1 < static_cast<int>(cfg.iqSize)
            ? i + 1 : -1;
    }
    iqFreeHead = 0;
    iqCount = 0;
    timedReady.clear();
    issueReady.clear();
    staleIq.clear();
    completions.clear();
    loadReleases.clear();
    mshrReleases.clear();
    lsqOcc = 0;
    stalledBranch.reset();
    earlyResolved.reset();
    stalledSyscall = false;
    syscallResumePs.reset();
    lastSkip = SkipWindow{};
    for (auto &ref : renameMap)
        ref.inFlight = false;
    fetchSeq = seq;
    numRetired = seq;
    // The refilled pipeline starts fetching next cycle.
    fetchResumeAt = curCycle + 1;
}

void
OooCore::tick(TimePs now)
{
    if (done())
        return;
    if (hooks != nullptr && hooks->parked())
        return;

    doComplete(now);
    doCommit(now);
    doIssue(now);
    doDispatch(now);
    doFetch(now);

    ++curCycle;
    ++st.cycles;
}

void
OooCore::doComplete(TimePs)
{
    while (!completions.empty() && completions.top().first <= curCycle) {
        InstSeq seq = completions.top().second;
        completions.pop();
        if (rob.empty() || seq < rob.front().seq)
            continue; // early-resolved and already committed
        RobEntry &e = robFor(seq);
        if (e.completed)
            continue; // early resolution beat own execution
        e.completed = true;
        if (stalledBranch && *stalledBranch == seq) {
            stalledBranch.reset();
            fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
        }
    }
}

void
OooCore::doCommit(TimePs now)
{
    unsigned committed = 0;
    while (committed < cfg.width && !rob.empty()) {
        RobEntry &head = rob.front();
        if (!head.completed)
            break;

        InstSeq seq = head.seq;
        bool injected = head.injected;
        const TraceInst &inst = (*trace)[seq];

        if (inst.op == OpClass::Store) {
            if (hooks != nullptr && !hooks->storeCanCommit(now)) {
                ++st.storeQueueStalls;
                break;
            }
            // Redundant private store (write-through in contesting
            // mode); its latency is hidden by the store buffer.
            hier.access(inst.addr, true, curCycle);
            if (hooks != nullptr)
                hooks->onStoreCommit(inst.addr, now);
            if (!injected) {
                panic_if(lsqOcc == 0, "LSQ underflow at store commit");
                --lsqOcc;
            }
        } else if (inst.op == OpClass::Syscall) {
            if (!syscallResumePs) {
                if (hooks != nullptr) {
                    auto resume = hooks->onSyscall(seq, now);
                    if (!resume) {
                        ++st.syscallStalls;
                        break; // rendezvous incomplete; retry
                    }
                    syscallResumePs = *resume;
                } else {
                    syscallResumePs = now
                        + cyclesToPs(cfg.syscallHandlerCycles,
                                     cfg.clockPeriodPs);
                }
            }
            if (now < *syscallResumePs) {
                ++st.syscallStalls;
                break;
            }
            syscallResumePs.reset();
            stalledSyscall = false;
            fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
            ++st.syscalls;
        }

        if (inst.producesValue()) {
            RenameRef &ref = renameMap[inst.dst];
            if (ref.inFlight && ref.producer == seq)
                ref.inFlight = false;
        }

        if (hooks != nullptr)
            hooks->onRetire(seq, inst, now);
        if (retireCb)
            // Region-log callback; only the single-core harness
            // attaches one, contested cores leave it empty.
            // contest-lint: allow(unknown-call)
            retireCb(seq, now);

        rob.pop_front();
        ++numRetired;
        ++st.retired;
        ++committed;
    }
}

void
OooCore::doIssue(TimePs)
{
    // Release LSQ slots of returned loads and MSHRs of returned
    // misses before selecting.
    while (!loadReleases.empty() && loadReleases.top() <= curCycle) {
        loadReleases.pop();
        panic_if(lsqOcc == 0, "LSQ underflow at load return");
        --lsqOcc;
    }
    while (!mshrReleases.empty() && mshrReleases.top() <= curCycle)
        mshrReleases.pop();

    // Wakeups whose operand time has arrived become issuable; the
    // issue heap then replays the old linear select's oldest-first
    // order over exactly the issuable entries.
    while (!timedReady.empty() && timedReady.top().readyAt <= curCycle) {
        TimedReady tr = timedReady.top();
        timedReady.pop();
        const IqSlot &sl = iqPool[tr.slot];
        if (sl.inUse && sl.seq == tr.seq)
            issueReady.push({tr.seq, tr.slot});
    }

    unsigned issued = 0;
    unsigned mem_issued = 0;
    while (issued < cfg.width && !issueReady.empty()) {
        IssueReady rec = issueReady.top();
        issueReady.pop();
        IqSlot &sl = iqPool[rec.slot];
        if (!sl.inUse || sl.seq != rec.seq)
            continue; // the slot was reaped; stale heap record

        // The old linear select erased externally completed entries
        // as its age-ordered scan passed them; reaching rec.seq with
        // issue slots to spare means the scan passed everything
        // older first.
        reapStaleBefore(rec.seq);

        if (rob.empty() || rec.seq < rob.front().seq
            || robFor(rec.seq).completed) {
            // This entry is itself externally completed (early
            // branch resolution): the scan reached it, drop it.
            auto it = std::find_if(staleIq.begin(), staleIq.end(),
                                   [&](const IssueReady &r) {
                                       return r.slot == rec.slot;
                                   });
            panic_if(it == staleIq.end(),
                     "completed IQ entry missing from the stale list");
            staleIq.erase(it);
            dropStaleSlot(rec.slot);
            continue;
        }

        RobEntry &re = robFor(rec.seq);
        const TraceInst &inst = (*trace)[rec.seq];

        bool is_mem = inst.isMem() && !sl.injected;
        if (is_mem && mem_issued >= cfg.l1dPorts) {
            // reserve()d to cfg.iqSize; holds at most the ready
            // records drained this tick. contest-lint: allow(window-phase)
            deferScratch.push_back(rec);
            continue;
        }

        Cycles lat_total{};
        if (sl.injected) {
            // MarkReady injection: the value travels with the
            // instruction; issuing just writes it back.
            lat_total = Cycles{1};
        } else if (inst.op == OpClass::Load) {
            bool l1_hit = hier.l1().probe(inst.addr);
            if (!l1_hit && mshrReleases.size() >= cfg.mshrs) {
                // Same reserve()d scratch as above.
                // contest-lint: allow(window-phase)
                deferScratch.push_back(rec);
                continue; // no MSHR for the miss
            }
            auto res = hier.access(inst.addr, false, curCycle);
            lat_total = res.latency;
            if (res.level != MemLevel::L1)
                mshrReleases.push(curCycle + lat_total);
        } else if (inst.op == OpClass::Store) {
            lat_total = Cycles{1}; // address generation; data at commit
        } else {
            lat_total = inst.execLatency();
        }

        re.issued = true;
        re.valueReadyAt = curCycle + lat_total + cfg.wakeupLatency;
        re.completeAt = curCycle + cfg.schedDepth + lat_total;
        completions.push({re.completeAt, re.seq});
        if (inst.op == OpClass::Load && !sl.injected)
            loadReleases.push(re.completeAt);
        wakeWaiters(re);
        re.iqSlot = -1;
        freeIqSlot(rec.slot);

        if (is_mem)
            ++mem_issued;
        ++issued;
    }
    if (issued < cfg.width) {
        // The old scan would have walked to the end of the queue.
        reapStaleBefore(InstSeq::max());
    }
    for (const IssueReady &rec : deferScratch)
        issueReady.push(rec);
    deferScratch.clear();
}

OooCore::DispatchBlock
OooCore::dispatchBlock() const
{
    if (fetchQueue.empty())
        return DispatchBlock::Empty;
    const FetchEntry &fe = fetchQueue.front();
    if (fe.renameReadyAt > curCycle)
        return DispatchBlock::Empty;
    if (earlyResolved && *earlyResolved == fe.seq)
        return DispatchBlock::ConsumesEarly;
    const TraceInst &inst = (*trace)[fe.seq];
    bool is_syscall = inst.op == OpClass::Syscall;
    if (is_syscall && !rob.empty())
        return DispatchBlock::SyscallDrain;
    if (rob.size() >= cfg.robSize)
        return DispatchBlock::RobFull;
    bool port_steal = fe.injected && style == InjectionStyle::PortSteal;
    bool needs_iq = !is_syscall && !port_steal;
    if (needs_iq && iqCount >= cfg.iqSize)
        return DispatchBlock::IqFull;
    bool needs_lsq = inst.isMem() && !fe.injected;
    if (needs_lsq && lsqOcc >= cfg.lsqSize)
        return DispatchBlock::LsqFull;
    return DispatchBlock::None;
}

void
OooCore::doDispatch(TimePs)
{
    unsigned dispatched = 0;
    while (dispatched < cfg.width && !fetchQueue.empty()) {
        const FetchEntry &fe = fetchQueue.front();
        if (fe.renameReadyAt > curCycle)
            break;

        const TraceInst &inst = (*trace)[fe.seq];
        bool injected = fe.injected;
        if (earlyResolved && *earlyResolved == fe.seq) {
            injected = true;
            earlyResolved.reset();
            ++st.injected;
        }

        bool is_syscall = inst.op == OpClass::Syscall;
        if (is_syscall && !rob.empty())
            break; // serialize: drain before dispatching

        if (rob.size() >= cfg.robSize) {
            ++st.robFullStalls;
            break;
        }
        bool port_steal =
            injected && style == InjectionStyle::PortSteal;
        bool needs_iq = !is_syscall && !port_steal;
        if (needs_iq && iqCount >= cfg.iqSize) {
            ++st.iqFullStalls;
            break;
        }
        bool needs_lsq = inst.isMem() && !injected;
        if (needs_lsq && lsqOcc >= cfg.lsqSize) {
            ++st.lsqFullStalls;
            break;
        }

        RobEntry re;
        re.seq = fe.seq;
        re.injected = injected;
        if (port_steal || is_syscall) {
            // Injected results complete at rename (port stealing);
            // syscalls execute in the handler, not the pipeline.
            re.issued = true;
            re.completeAt = curCycle + 1;
            re.valueReadyAt = curCycle + 1;
            completions.push({re.completeAt, re.seq});
        } else {
            int slot = allocIqSlot();
            IqSlot &qe = iqPool[slot];
            qe.seq = fe.seq;
            qe.injected = injected;
            if (!injected) {
                RegId srcs[2] = {inst.src1, inst.src2};
                for (int s = 0; s < 2; ++s) {
                    if (srcs[s] == invalidReg)
                        continue;
                    const RenameRef &ref = renameMap[srcs[s]];
                    if (!ref.inFlight)
                        continue; // value already architectural
                    Cycles r{};
                    if (srcStatus(ref.producer, r)) {
                        qe.srcReadyAt[s] = r;
                    } else {
                        // Producer still executing: chain onto its
                        // waiter list for an issue-time wakeup.
                        qe.pendingMask |=
                            static_cast<std::uint8_t>(1u << s);
                        qe.srcProd[s] = ref.producer;
                        RobEntry &pe = robFor(ref.producer);
                        qe.nextWaiter[s] = pe.firstWaiter;
                        pe.firstWaiter = slot * 2 + s;
                    }
                }
            }
            if (qe.pendingMask == 0)
                timedReady.push({std::max(qe.srcReadyAt[0],
                                          qe.srcReadyAt[1]),
                                 fe.seq, slot});
            re.iqSlot = slot;
            if (needs_lsq)
                ++lsqOcc;
        }

        if (inst.producesValue())
            renameMap[inst.dst] = RenameRef{fe.seq, true};

        // Fixed-capacity RingBuffer; overflow panics before it
        // could ever allocate. contest-lint: allow(window-phase)
        rob.push_back(re);
        fetchQueue.pop_front();
        ++dispatched;
    }
}

void
OooCore::doFetch(TimePs now)
{
    if (fetchSeq >= trace->endSeq())
        return;

    if (stalledBranch) {
        // Figure 5 corner case: a retired instance of the branch may
        // arrive on a result FIFO before the core resolves it.
        if (hooks != nullptr) {
            auto arrival =
                hooks->externalBranchResolve(*stalledBranch, now);
            if (arrival && *arrival <= now) {
                InstSeq bseq = *stalledBranch;
                hooks->confirmEarlyResolve(bseq, now);
                ++st.earlyResolves;
                stalledBranch.reset();
                fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
                if (!rob.empty() && bseq >= rob.front().seq
                    && bseq < rob.front().seq + rob.size()) {
                    RobEntry &e = robFor(bseq);
                    if (!e.completed) {
                        e.completed = true;
                        e.injected = true;
                        e.issued = true;
                        e.valueReadyAt = curCycle + 1;
                        wakeWaiters(e);
                        if (e.iqSlot != -1)
                            markIqStale(e);
                    }
                } else {
                    // Still in the front-end pipe: complete it as an
                    // injected instruction at dispatch.
                    earlyResolved = bseq;
                }
            }
        }
        if (stalledBranch) {
            ++st.fetchStallBranch;
            return;
        }
    }

    if (curCycle < fetchResumeAt || stalledSyscall)
        return;

    // The fetch group's leading access probes the I-cache; a miss
    // stalls the front end while the block fills through L2.
    if (icache && fetchQueue.size() < fetchQueueCap) {
        Addr pc = (*trace)[fetchSeq].pc;
        auto probe = icache->access(pc, false);
        if (!probe.hit) {
            ++st.icacheMisses;
            fetchResumeAt = curCycle + cfg.l1i.latency
                + hier.instrFill(pc, curCycle);
            return;
        }
    }

    unsigned fetched = 0;
    while (fetched < cfg.width && fetchQueue.size() < fetchQueueCap
           && fetchSeq < trace->endSeq()) {
        const TraceInst &inst = (*trace)[fetchSeq];

        FetchOutcome out;
        if (hooks != nullptr)
            out = hooks->onFetch(fetchSeq, now);

        bool end_group = false;
        bool mispred = false;
        if (out.injected) {
            ++st.injected;
            if (inst.op == OpClass::BranchCond) {
                ++st.condBranches;
                // The injected outcome still trains the predictor
                // and history (hardware trains at retirement), so
                // the core predicts well when it later takes the
                // lead.
                bpred.predictAndTrain(inst.pc, inst.taken, false);
            }
            if (inst.isBranch() && inst.taken) {
                btb.lookupAndTrain(inst.pc, inst.target);
                end_group = true;
            }
        } else if (inst.op == OpClass::BranchCond) {
            ++st.condBranches;
            bool pred = bpred.predictAndTrain(inst.pc, inst.taken);
            bool btb_ok = true;
            if (inst.taken)
                btb_ok = btb.lookupAndTrain(inst.pc, inst.target);
            if (pred != inst.taken) {
                mispred = true;
            } else if (inst.taken) {
                end_group = true;
                if (!btb_ok) {
                    ++st.btbMissRedirects;
                    fetchResumeAt =
                        curCycle + 1 + cfg.btbMissPenalty;
                }
            }
        } else if (inst.op == OpClass::BranchUncond) {
            bool btb_ok = btb.lookupAndTrain(inst.pc, inst.target);
            end_group = true;
            if (!btb_ok) {
                ++st.btbMissRedirects;
                fetchResumeAt = curCycle + 1 + cfg.btbMissPenalty;
            }
        } else if (inst.op == OpClass::Syscall) {
            stalledSyscall = true;
        }

        // Fixed-capacity RingBuffer (see rob.push_back above).
        // contest-lint: allow(window-phase)
        fetchQueue.push_back(
            FetchEntry{fetchSeq, curCycle + cfg.frontEndDepth,
                       out.injected});
        ++fetchSeq;
        ++fetched;

        if (mispred) {
            ++st.mispredicts;
            stalledBranch = fetchSeq - 1;
            break;
        }
        if (stalledSyscall || end_group)
            break;
    }
}

Cycles
OooCore::nextEventCycle() const
{
    // A tick is a provable no-op when every stage is inert and stays
    // inert: nothing completes or releases, the commit head is not
    // completed, no issue-queue entry can issue, dispatch is blocked
    // (or empty), and fetch is stalled. The returned bound is
    // conservative — the window may end before the next real event
    // (the caller simply resumes cycle-by-case stepping), never
    // after it.
    if (done())
        return curCycle;
    if (hooks != nullptr && stalledBranch)
        return curCycle; // polls external resolution every cycle
    if (!staleIq.empty())
        return curCycle; // a pending reap mutates IQ occupancy
    if (!rob.empty() && rob.front().completed)
        return curCycle; // commits (or replays a commit-stall hook)

    Cycles next = Cycles::max();
    auto consider = [&next](Cycles c) {
        if (c < next)
            next = c;
    };

    if (!completions.empty())
        consider(completions.top().first);
    if (!loadReleases.empty())
        consider(loadReleases.top());
    if (!mshrReleases.empty())
        consider(mshrReleases.top());
    if (!timedReady.empty())
        consider(timedReady.top().readyAt);

    // Issuable entries act immediately — unless every one is a load
    // blocked on a full MSHR file, which frees at
    // mshrReleases.top() (already considered above).
    for (const IssueReady &rec : issueReady.items()) {
        const IqSlot &sl = iqPool[rec.slot];
        if (!sl.inUse || sl.seq != rec.seq)
            continue; // superseded record; nothing will happen
        if (rob.empty() || rec.seq < rob.front().seq
            || robFor(rec.seq).completed)
            return curCycle; // next doIssue reaps it
        const TraceInst &inst = (*trace)[rec.seq];
        if (inst.op != OpClass::Load || sl.injected)
            return curCycle; // issues next tick
        if (hier.l1().probe(inst.addr)
            || mshrReleases.size() < cfg.mshrs)
            return curCycle; // issues next tick
    }

    switch (dispatchBlock()) {
      case DispatchBlock::None:
      case DispatchBlock::ConsumesEarly:
        return curCycle; // dispatch acts (or consumes the patch)
      case DispatchBlock::Empty:
        if (!fetchQueue.empty())
            consider(fetchQueue.front().renameReadyAt);
        break;
      case DispatchBlock::SyscallDrain:
      case DispatchBlock::RobFull:
      case DispatchBlock::IqFull:
      case DispatchBlock::LsqFull:
        // Unblocks through a commit, issue, or release — all
        // bounded by the events considered above.
        break;
    }

    if (fetchSeq < trace->endSeq()) {
        if (stalledBranch || stalledSyscall) {
            // Resolution arrives via a completion (branch) or the
            // syscall's commit — bounded above.
        } else if (curCycle < fetchResumeAt) {
            consider(fetchResumeAt);
        } else if (fetchQueue.size() >= fetchQueueCap) {
            // Drains through dispatch, which is blocked (else we
            // returned curCycle above).
        } else {
            return curCycle; // fetch proceeds next tick
        }
    }

    if (next == Cycles::max())
        return curCycle; // no provable bound; step normally
    return next;
}

Cycles
OooCore::skipIdleCycles(Cycles max_ticks)
{
    lastSkip = SkipWindow{};
    if (max_ticks == Cycles{} || done())
        return Cycles{};
    if (hooks != nullptr && hooks->parked())
        return Cycles{};

    Cycles ev = nextEventCycle();
    if (ev <= curCycle)
        return Cycles{};
    Cycles n = ev - curCycle;
    if (max_ticks < n)
        n = max_ticks;

    // The pipeline state is frozen across the window, so every
    // elided tick would have incremented exactly the same stall
    // counters: the (stable) first failing dispatch check, and the
    // mispredict fetch stall when no hooks poll for it.
    SkipWindow w;
    w.ticks = n;
    switch (dispatchBlock()) {
      case DispatchBlock::RobFull:
        w.robFull = true;
        break;
      case DispatchBlock::IqFull:
        w.iqFull = true;
        break;
      case DispatchBlock::LsqFull:
        w.lsqFull = true;
        break;
      default:
        break;
    }
    w.branchStall = stalledBranch.has_value() && hooks == nullptr
        && fetchSeq < trace->endSeq();

    curCycle += n;
    st.cycles += n;
    if (w.robFull)
        st.robFullStalls += n;
    if (w.iqFull)
        st.iqFullStalls += n;
    if (w.lsqFull)
        st.lsqFullStalls += n;
    if (w.branchStall)
        st.fetchStallBranch += n;
    lastSkip = w;
    skippedTotal += n;
    return n;
}

void
OooCore::rewindIdleTicks(Cycles n)
{
    if (n == Cycles{})
        return;
    panic_if(n > lastSkip.ticks,
             "rewinding %llu ticks but the last window elided %llu",
             static_cast<unsigned long long>(n),
             static_cast<unsigned long long>(lastSkip.ticks));
    curCycle = curCycle - n;
    st.cycles = st.cycles - n;
    if (lastSkip.robFull)
        st.robFullStalls = st.robFullStalls - n;
    if (lastSkip.iqFull)
        st.iqFullStalls = st.iqFullStalls - n;
    if (lastSkip.lsqFull)
        st.lsqFullStalls = st.lsqFullStalls - n;
    if (lastSkip.branchStall)
        st.fetchStallBranch = st.fetchStallBranch - n;
    lastSkip.ticks = lastSkip.ticks - n;
    skippedTotal = skippedTotal - n;
}

} // namespace contest
