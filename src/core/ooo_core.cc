#include "core/ooo_core.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

OooCore::OooCore(const CoreConfig &core_config, TracePtr trace_ptr,
                 CoreId core_id)
    : cfg(core_config), trace(std::move(trace_ptr)), coreId(core_id),
      hier(cfg.l1d, cfg.l2, cfg.memAccessCycles,
           cfg.loadFillGapCycles(), cfg.storeDrainGapCycles()),
      bpred(cfg.bpred), btb(cfg.btb)
{
    cfg.validate();
    fatal_if(!trace, "core '%s' constructed without a trace",
             cfg.name.c_str());
    if (cfg.wakeupLatency > cfg.schedDepth)
        warn("core '%s': wakeup latency (%llu) exceeds scheduler depth "
             "(%llu); committed producers are treated as ready",
             cfg.name.c_str(),
             static_cast<unsigned long long>(cfg.wakeupLatency),
             static_cast<unsigned long long>(cfg.schedDepth));
    fetchQueueCap = std::size_t{cfg.width} * (cfg.frontEndDepth + 2);
    renameMap.assign(numArchRegs, RenameRef{});
    if (cfg.modelICache)
        icache = std::make_unique<Cache>(cfg.l1i);
}

void
OooCore::attachContest(ContestHooks *contest_hooks,
                       InjectionStyle injection_style)
{
    hooks = contest_hooks;
    style = injection_style;
}

OooCore::RobEntry &
OooCore::robFor(InstSeq seq)
{
    panic_if(rob.empty(), "robFor(%llu) on empty ROB",
             static_cast<unsigned long long>(seq));
    InstSeq head = rob.front().seq;
    panic_if(seq < head || seq >= head + rob.size(),
             "robFor(%llu) outside window [%llu, %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(head),
             static_cast<unsigned long long>(head + rob.size()));
    return rob[static_cast<std::size_t>(seq - head)];
}

bool
OooCore::srcStatus(InstSeq producer, Cycles &ready_at) const
{
    if (rob.empty() || producer < rob.front().seq) {
        // The producer has committed; its value is architectural.
        ready_at = Cycles{};
        return true;
    }
    InstSeq head = rob.front().seq;
    panic_if(producer >= head + rob.size(),
             "source producer %llu not yet dispatched",
             static_cast<unsigned long long>(producer));
    const RobEntry &e = rob[static_cast<std::size_t>(producer - head)];
    if (!e.issued)
        return false;
    ready_at = e.valueReadyAt;
    return true;
}

void
OooCore::reforkTo(InstSeq seq)
{
    fatal_if(seq > trace->endSeq(),
             "reforkTo(%llu) beyond trace end",
             static_cast<unsigned long long>(seq));
    fetchQueue.clear();
    rob.clear();
    iq.clear();
    completions = {};
    loadReleases = {};
    mshrReleases = {};
    lsqOcc = 0;
    stalledBranch.reset();
    earlyResolved.reset();
    stalledSyscall = false;
    syscallResumePs.reset();
    for (auto &ref : renameMap)
        ref.inFlight = false;
    fetchSeq = seq;
    numRetired = seq;
    // The refilled pipeline starts fetching next cycle.
    fetchResumeAt = curCycle + 1;
}

void
OooCore::tick(TimePs now)
{
    if (done())
        return;
    if (hooks != nullptr && hooks->parked())
        return;

    doComplete(now);
    doCommit(now);
    doIssue(now);
    doDispatch(now);
    doFetch(now);

    ++curCycle;
    ++st.cycles;
}

void
OooCore::doComplete(TimePs)
{
    while (!completions.empty() && completions.top().first <= curCycle) {
        InstSeq seq = completions.top().second;
        completions.pop();
        if (rob.empty() || seq < rob.front().seq)
            continue; // early-resolved and already committed
        RobEntry &e = robFor(seq);
        if (e.completed)
            continue; // early resolution beat own execution
        e.completed = true;
        if (stalledBranch && *stalledBranch == seq) {
            stalledBranch.reset();
            fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
        }
    }
}

void
OooCore::doCommit(TimePs now)
{
    unsigned committed = 0;
    while (committed < cfg.width && !rob.empty()) {
        RobEntry &head = rob.front();
        if (!head.completed)
            break;

        InstSeq seq = head.seq;
        bool injected = head.injected;
        const TraceInst &inst = (*trace)[seq];

        if (inst.op == OpClass::Store) {
            if (hooks != nullptr && !hooks->storeCanCommit(now)) {
                ++st.storeQueueStalls;
                break;
            }
            // Redundant private store (write-through in contesting
            // mode); its latency is hidden by the store buffer.
            hier.access(inst.addr, true, curCycle);
            if (hooks != nullptr)
                hooks->onStoreCommit(inst.addr, now);
            if (!injected) {
                panic_if(lsqOcc == 0, "LSQ underflow at store commit");
                --lsqOcc;
            }
        } else if (inst.op == OpClass::Syscall) {
            if (!syscallResumePs) {
                if (hooks != nullptr) {
                    auto resume = hooks->onSyscall(seq, now);
                    if (!resume) {
                        ++st.syscallStalls;
                        break; // rendezvous incomplete; retry
                    }
                    syscallResumePs = *resume;
                } else {
                    syscallResumePs = now
                        + cyclesToPs(cfg.syscallHandlerCycles,
                                     cfg.clockPeriodPs);
                }
            }
            if (now < *syscallResumePs) {
                ++st.syscallStalls;
                break;
            }
            syscallResumePs.reset();
            stalledSyscall = false;
            fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
            ++st.syscalls;
        }

        if (inst.producesValue()) {
            RenameRef &ref = renameMap[inst.dst];
            if (ref.inFlight && ref.producer == seq)
                ref.inFlight = false;
        }

        if (hooks != nullptr)
            hooks->onRetire(seq, inst, now);
        if (retireCb)
            retireCb(seq, now);

        rob.pop_front();
        ++numRetired;
        ++st.retired;
        ++committed;
    }
}

void
OooCore::doIssue(TimePs)
{
    // Release LSQ slots of returned loads and MSHRs of returned
    // misses before selecting.
    while (!loadReleases.empty() && loadReleases.top() <= curCycle) {
        loadReleases.pop();
        panic_if(lsqOcc == 0, "LSQ underflow at load return");
        --lsqOcc;
    }
    while (!mshrReleases.empty() && mshrReleases.top() <= curCycle)
        mshrReleases.pop();

    unsigned issued = 0;
    unsigned mem_issued = 0;
    for (auto it = iq.begin(); it != iq.end() && issued < cfg.width;) {
        if (rob.empty() || it->seq < rob.front().seq) {
            // The instruction was completed externally (early
            // branch resolution) and has already committed.
            it = iq.erase(it);
            continue;
        }
        RobEntry &re = robFor(it->seq);
        if (re.completed) {
            // Early-resolved branch: its popped outcome already
            // completed it; drop the queue entry.
            it = iq.erase(it);
            continue;
        }

        const TraceInst &inst = (*trace)[it->seq];

        bool ready = true;
        for (int s = 0; s < 2; ++s) {
            if (it->srcPending[s]) {
                Cycles r{};
                if (srcStatus(it->srcProd[s], r)) {
                    it->srcPending[s] = false;
                    it->srcReadyAt[s] = r;
                } else {
                    ready = false;
                }
            }
            if (!it->srcPending[s] && it->srcReadyAt[s] > curCycle)
                ready = false;
        }
        if (!ready) {
            ++it;
            continue;
        }

        bool is_mem = inst.isMem() && !it->injected;
        if (is_mem && mem_issued >= cfg.l1dPorts) {
            ++it;
            continue;
        }

        Cycles lat_total{};
        if (it->injected) {
            // MarkReady injection: the value travels with the
            // instruction; issuing just writes it back.
            lat_total = Cycles{1};
        } else if (inst.op == OpClass::Load) {
            bool l1_hit = hier.l1().probe(inst.addr);
            if (!l1_hit && mshrReleases.size() >= cfg.mshrs) {
                ++it;
                continue; // no MSHR for the miss
            }
            auto res = hier.access(inst.addr, false, curCycle);
            lat_total = res.latency;
            if (res.level != MemLevel::L1)
                mshrReleases.push(curCycle + lat_total);
        } else if (inst.op == OpClass::Store) {
            lat_total = Cycles{1}; // address generation; data at commit
        } else {
            lat_total = inst.execLatency();
        }

        re.issued = true;
        re.valueReadyAt = curCycle + lat_total + cfg.wakeupLatency;
        re.completeAt = curCycle + cfg.schedDepth + lat_total;
        completions.push({re.completeAt, re.seq});
        if (inst.op == OpClass::Load && !it->injected)
            loadReleases.push(re.completeAt);

        if (is_mem)
            ++mem_issued;
        ++issued;
        it = iq.erase(it);
    }
}

void
OooCore::doDispatch(TimePs)
{
    unsigned dispatched = 0;
    while (dispatched < cfg.width && !fetchQueue.empty()) {
        const FetchEntry &fe = fetchQueue.front();
        if (fe.renameReadyAt > curCycle)
            break;

        const TraceInst &inst = (*trace)[fe.seq];
        bool injected = fe.injected;
        if (earlyResolved && *earlyResolved == fe.seq) {
            injected = true;
            earlyResolved.reset();
            ++st.injected;
        }

        bool is_syscall = inst.op == OpClass::Syscall;
        if (is_syscall && !rob.empty())
            break; // serialize: drain before dispatching

        if (rob.size() >= cfg.robSize) {
            ++st.robFullStalls;
            break;
        }
        bool port_steal =
            injected && style == InjectionStyle::PortSteal;
        bool needs_iq = !is_syscall && !port_steal;
        if (needs_iq && iq.size() >= cfg.iqSize) {
            ++st.iqFullStalls;
            break;
        }
        bool needs_lsq = inst.isMem() && !injected;
        if (needs_lsq && lsqOcc >= cfg.lsqSize) {
            ++st.lsqFullStalls;
            break;
        }

        RobEntry re;
        re.seq = fe.seq;
        re.injected = injected;
        if (port_steal || is_syscall) {
            // Injected results complete at rename (port stealing);
            // syscalls execute in the handler, not the pipeline.
            re.issued = true;
            re.completeAt = curCycle + 1;
            re.valueReadyAt = curCycle + 1;
            completions.push({re.completeAt, re.seq});
        } else {
            IqEntry qe;
            qe.seq = fe.seq;
            qe.injected = injected;
            if (!injected) {
                RegId srcs[2] = {inst.src1, inst.src2};
                for (int s = 0; s < 2; ++s) {
                    if (srcs[s] == invalidReg)
                        continue;
                    const RenameRef &ref = renameMap[srcs[s]];
                    if (!ref.inFlight)
                        continue; // value already architectural
                    Cycles r{};
                    if (srcStatus(ref.producer, r)) {
                        qe.srcReadyAt[s] = r;
                    } else {
                        qe.srcPending[s] = true;
                        qe.srcProd[s] = ref.producer;
                    }
                }
            }
            iq.push_back(qe);
            if (needs_lsq)
                ++lsqOcc;
        }

        if (inst.producesValue())
            renameMap[inst.dst] = RenameRef{fe.seq, true};

        rob.push_back(re);
        fetchQueue.pop_front();
        ++dispatched;
    }
}

void
OooCore::doFetch(TimePs now)
{
    if (fetchSeq >= trace->endSeq())
        return;

    if (stalledBranch) {
        // Figure 5 corner case: a retired instance of the branch may
        // arrive on a result FIFO before the core resolves it.
        if (hooks != nullptr) {
            auto arrival =
                hooks->externalBranchResolve(*stalledBranch, now);
            if (arrival && *arrival <= now) {
                InstSeq bseq = *stalledBranch;
                hooks->confirmEarlyResolve(bseq, now);
                ++st.earlyResolves;
                stalledBranch.reset();
                fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
                if (!rob.empty() && bseq >= rob.front().seq
                    && bseq < rob.front().seq + rob.size()) {
                    RobEntry &e = robFor(bseq);
                    if (!e.completed) {
                        e.completed = true;
                        e.injected = true;
                        e.issued = true;
                        e.valueReadyAt = curCycle + 1;
                    }
                } else {
                    // Still in the front-end pipe: complete it as an
                    // injected instruction at dispatch.
                    earlyResolved = bseq;
                }
            }
        }
        if (stalledBranch) {
            ++st.fetchStallBranch;
            return;
        }
    }

    if (curCycle < fetchResumeAt || stalledSyscall)
        return;

    // The fetch group's leading access probes the I-cache; a miss
    // stalls the front end while the block fills through L2.
    if (icache && fetchQueue.size() < fetchQueueCap) {
        Addr pc = (*trace)[fetchSeq].pc;
        auto probe = icache->access(pc, false);
        if (!probe.hit) {
            ++st.icacheMisses;
            fetchResumeAt = curCycle + cfg.l1i.latency
                + hier.instrFill(pc, curCycle);
            return;
        }
    }

    unsigned fetched = 0;
    while (fetched < cfg.width && fetchQueue.size() < fetchQueueCap
           && fetchSeq < trace->endSeq()) {
        const TraceInst &inst = (*trace)[fetchSeq];

        FetchOutcome out;
        if (hooks != nullptr)
            out = hooks->onFetch(fetchSeq, now);

        bool end_group = false;
        bool mispred = false;
        if (out.injected) {
            ++st.injected;
            if (inst.op == OpClass::BranchCond) {
                ++st.condBranches;
                // The injected outcome still trains the predictor
                // and history (hardware trains at retirement), so
                // the core predicts well when it later takes the
                // lead.
                bpred.predictAndTrain(inst.pc, inst.taken, false);
            }
            if (inst.isBranch() && inst.taken) {
                btb.lookupAndTrain(inst.pc, inst.target);
                end_group = true;
            }
        } else if (inst.op == OpClass::BranchCond) {
            ++st.condBranches;
            bool pred = bpred.predictAndTrain(inst.pc, inst.taken);
            bool btb_ok = true;
            if (inst.taken)
                btb_ok = btb.lookupAndTrain(inst.pc, inst.target);
            if (pred != inst.taken) {
                mispred = true;
            } else if (inst.taken) {
                end_group = true;
                if (!btb_ok) {
                    ++st.btbMissRedirects;
                    fetchResumeAt =
                        curCycle + 1 + cfg.btbMissPenalty;
                }
            }
        } else if (inst.op == OpClass::BranchUncond) {
            bool btb_ok = btb.lookupAndTrain(inst.pc, inst.target);
            end_group = true;
            if (!btb_ok) {
                ++st.btbMissRedirects;
                fetchResumeAt = curCycle + 1 + cfg.btbMissPenalty;
            }
        } else if (inst.op == OpClass::Syscall) {
            stalledSyscall = true;
        }

        fetchQueue.push_back(
            FetchEntry{fetchSeq, curCycle + cfg.frontEndDepth,
                       out.injected});
        ++fetchSeq;
        ++fetched;

        if (mispred) {
            ++st.mispredicts;
            stalledBranch = fetchSeq - 1;
            break;
        }
        if (stalledSyscall || end_group)
            break;
    }
}

} // namespace contest
