/**
 * @file
 * The benchmark-customized core palette from the paper's Appendix A.
 *
 * Each core type is the XpScalar simulated-annealing result for one
 * SPEC2000 integer benchmark at 70nm, transcribed verbatim from the
 * appendix table. A core type is named after the benchmark it was
 * customized for (e.g. the "gcc" core type), exactly as in the paper.
 */

#ifndef CONTEST_CORE_PALETTE_HH
#define CONTEST_CORE_PALETTE_HH

#include <string>
#include <vector>

#include "core/config.hh"

namespace contest
{

/** All eleven Appendix A core types, in the paper's column order. */
const std::vector<CoreConfig> &appendixAPalette();

/** Look up a core type by name; fatal() if unknown. */
const CoreConfig &coreConfigByName(const std::string &name);

} // namespace contest

#endif // CONTEST_CORE_PALETTE_HH
