/**
 * @file
 * Per-core execution statistics.
 */

#ifndef CONTEST_CORE_STATS_HH
#define CONTEST_CORE_STATS_HH

#include <cstdint>

#include "common/types.hh"

namespace contest
{

/** Counters collected by one core over one run. */
struct CoreStats
{
    Cycles cycles{};                //!< core cycles ticked
    std::uint64_t retired = 0;      //!< instructions committed
    std::uint64_t injected = 0;     //!< completions taken from a FIFO
    std::uint64_t condBranches = 0; //!< conditional branches fetched
    std::uint64_t mispredicts = 0;  //!< direction mispredictions
    std::uint64_t earlyResolves = 0;//!< Fig. 5 early branch resolves
    std::uint64_t btbMissRedirects = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t icacheMisses = 0;

    Cycles fetchStallBranch{};      //!< cycles stalled on mispredicts
    Cycles robFullStalls{};         //!< dispatch stalls: ROB full
    Cycles iqFullStalls{};          //!< dispatch stalls: IQ full
    Cycles lsqFullStalls{};         //!< dispatch stalls: LSQ full
    Cycles storeQueueStalls{};      //!< commit stalls: sync store queue
    Cycles syscallStalls{};         //!< commit stalls: exceptions

    /** Committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles.count() ? static_cast<double>(retired)
                / static_cast<double>(cycles.count())
                      : 0.0;
    }

    /** Misprediction rate over conditional branches. */
    double
    mispredictRate() const
    {
        return condBranches ? static_cast<double>(mispredicts)
                / static_cast<double>(condBranches)
                            : 0.0;
    }
};

} // namespace contest

#endif // CONTEST_CORE_STATS_HH
