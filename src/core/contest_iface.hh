/**
 * @file
 * The interface through which an out-of-order core participates in
 * contested execution. The core model depends only on this abstract
 * interface; the contesting machinery (result FIFOs, pop counters,
 * GRB wiring, store merging, exception rendezvous) lives in
 * src/contest and implements it.
 */

#ifndef CONTEST_CORE_CONTEST_IFACE_HH
#define CONTEST_CORE_CONTEST_IFACE_HH

#include <optional>

#include "common/types.hh"
#include "trace/instr.hh"

namespace contest
{

/** What the fetch stage learned from the contesting unit. */
struct FetchOutcome
{
    /**
     * The instruction was paired with a popped result (Scenario #2):
     * branches complete in fetch, value producers at rename, and no
     * prediction or execution is needed.
     */
    bool injected = false;
};

/**
 * Per-core contesting hooks; all methods are called in core order.
 *
 * Sequencing contract (the windowed parallel scheduler depends on
 * it): within one tick the core calls hooks with stream positions
 * that never exceed nextFetchSeq() + width - 1, the fetch counter
 * advances by at most width per tick, and retirement advances by at
 * most width per tick. These reach bounds are what lets the
 * contest system prove a span of ticks free of cross-core
 * interaction and execute it on concurrent workers.
 */
class ContestHooks
{
  public:
    virtual ~ContestHooks() = default;

    /**
     * The core fetches the instruction at stream position @p seq at
     * global time @p now. Implements the Scenario #1 / Scenario #2
     * logic: discards late results, and pairs a popped result with
     * the fetch when the core is trailing.
     */
    virtual FetchOutcome onFetch(InstSeq seq, TimePs now) = 0;

    /**
     * The core is stalled on a mispredicted branch at position
     * @p seq. Returns the global time at which a retired instance of
     * that branch was (or will have been) received from the most
     * advanced result FIFO — the Figure 5 corner case — or nullopt
     * if no such result is available yet. A returned time <= now
     * resolves the branch early and turns the core into a trailer.
     */
    virtual std::optional<TimePs>
    externalBranchResolve(InstSeq seq, TimePs now) = 0;

    /**
     * The core consumed the early resolution for the branch at
     * @p seq: the corresponding result is popped, which makes the
     * pop counter equal the (restored) fetch counter and turns
     * Scenario #1 into Scenario #2, exactly as in Figure 5.
     */
    virtual void confirmEarlyResolve(InstSeq seq, TimePs now) = 0;

    /** The core retires @p inst at position @p seq: broadcast on the
     *  core's outgoing global result bus. */
    virtual void onRetire(InstSeq seq, const TraceInst &inst,
                          TimePs now) = 0;

    /** May the next store commit, or is the synchronizing store
     *  queue exerting backpressure? */
    virtual bool storeCanCommit(TimePs now) = 0;

    /** The core commits its next store (program order) to @p addr. */
    virtual void onStoreCommit(Addr addr, TimePs now) = 0;

    /**
     * The core reached a synchronous exception at position @p seq
     * (commit point, pipeline drained). Implements the semaphore
     * rendezvous of Section 4.3. Returns the global time at which
     * this core may resume, or nullopt while other contesting cores
     * have not yet reached the exception (retry next cycle).
     */
    virtual std::optional<TimePs> onSyscall(InstSeq seq,
                                            TimePs now) = 0;

    /**
     * Is this core parked as a saturated lagger (Section 4.1.4)?
     * A parked core stops fetching and no longer holds back the
     * synchronizing store queue.
     */
    virtual bool parked() const = 0;
};

/**
 * The per-window execution phases of the parallel contest scheduler.
 *
 * A window is a span of global time [W0, W1) proved free of
 * cross-core interaction. Between beginWindow() and endWindow() a
 * hook implementation must touch only state owned by its own core —
 * cross-core effects (broadcasts, lead-frontier updates, store-queue
 * traffic) are recorded in a per-lane deferred-event log (a
 * structure-of-arrays of (is-store bit, seq-or-addr argument) —
 * DESIGN.md §13) instead of applied. The owner then replays all
 * cores' events in (time, core-id) order — exactly the sequential
 * event loop's tick order — which makes the parallel schedule
 * bit-identical to the sequential one.
 */
class WindowPhased
{
  public:
    virtual ~WindowPhased() = default;

    /** Enter deferred mode: cross-core effects are recorded, not
     *  applied, until endWindow(). @p horizon is the window's
     *  exclusive upper time bound W1 (for assertions/telemetry). */
    virtual void beginWindow(TimePs horizon) = 0;

    /** Leave deferred mode. The recorded events stay available to
     *  the owner's commit phase until the next beginWindow(). */
    virtual void endWindow() = 0;
};

} // namespace contest

#endif // CONTEST_CORE_CONTEST_IFACE_HH
