#include "core/config.hh"

#include "common/log.hh"

namespace contest
{

void
CoreConfig::validate() const
{
    fatal_if(width == 0 || width > 16,
             "core '%s': width %u out of range", name.c_str(), width);
    fatal_if(robSize < width,
             "core '%s': ROB (%u) smaller than width (%u)",
             name.c_str(), robSize, width);
    fatal_if(iqSize == 0 || iqSize > robSize,
             "core '%s': issue queue size %u invalid", name.c_str(),
             iqSize);
    fatal_if(lsqSize == 0,
             "core '%s': LSQ size must be non-zero", name.c_str());
    fatal_if(frontEndDepth == 0 || frontEndDepth > 32,
             "core '%s': front-end depth %u out of range",
             name.c_str(), frontEndDepth);
    fatal_if(clockPeriodPs == TimePs{},
             "core '%s': clock period must be non-zero", name.c_str());
    fatal_if(l1dPorts == 0,
             "core '%s': need at least one L1D port", name.c_str());
    fatal_if(mshrs == 0,
             "core '%s': need at least one MSHR", name.c_str());
}

} // namespace contest
