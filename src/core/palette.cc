#include "core/palette.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

namespace
{

/**
 * Build one palette entry from its Appendix A column.
 *
 * Column order of the arguments follows the appendix rows: memory
 * latency, front-end depth, width, ROB, IQ, wakeup latency,
 * scheduler depth, clock period (ps), L1D (assoc, block, sets,
 * latency), L2 (assoc, block, sets, latency), LSQ size.
 */
CoreConfig
entry(const char *name, unsigned mem_cycles, unsigned front_end,
      unsigned width, unsigned rob, unsigned iq, unsigned wakeup,
      unsigned sched, unsigned period_ps, unsigned l1_assoc,
      unsigned l1_block, unsigned l1_sets, unsigned l1_lat,
      unsigned l2_assoc, unsigned l2_block, unsigned l2_sets,
      unsigned l2_lat, unsigned lsq)
{
    CoreConfig c;
    c.name = name;
    c.memAccessCycles = Cycles{mem_cycles};
    c.frontEndDepth = front_end;
    c.width = width;
    c.robSize = rob;
    c.iqSize = iq;
    c.wakeupLatency = Cycles{wakeup};
    c.schedDepth = Cycles{sched};
    c.clockPeriodPs = TimePs{period_ps};
    c.l1d = CacheConfig{l1_sets, l1_assoc, l1_block, Cycles{l1_lat},
                        false, true};
    c.l2 = CacheConfig{l2_sets, l2_assoc, l2_block, Cycles{l2_lat},
                       false, true};
    c.lsqSize = lsq;
    // Cache ports scale with machine width, as any balanced design
    // (and the annealer that produced these columns) would require.
    c.l1dPorts = std::max(2u, (width + 1) / 2);
    c.validate();
    return c;
}

} // namespace

const std::vector<CoreConfig> &
appendixAPalette()
{
    static const std::vector<CoreConfig> palette = {
        //    name     mem  fe  w  rob   iq  wu sd  ps   L1D: a  blk  sets lat  L2: a  blk  sets lat  lsq
        entry("bzip",   112, 4, 5, 512,  64, 0, 1, 490,     2, 32,  1024, 2,      4, 64,  8192, 15, 128),
        entry("crafty", 321, 12, 8, 64,  32, 3, 3, 190,     1, 8,  16384, 5,     16, 64,   128,  7,  64),
        entry("gap",    173, 6, 4, 128,  32, 1, 1, 330,     1, 8,   2048, 2,      4, 256,  128,  4, 256),
        entry("gcc",    186, 7, 4, 256,  32, 1, 2, 310,     1, 8,  32768, 4,      8, 64,  1024,  6, 256),
        entry("gzip",   198, 7, 4, 64,   32, 1, 1, 290,     1, 128,  256, 3,      1, 128, 4096,  5, 128),
        entry("mcf",    120, 4, 3, 1024, 64, 0, 1, 450,     2, 128, 1024, 5,      4, 128, 8192, 27,  64),
        entry("parser", 198, 7, 4, 512,  32, 1, 2, 290,     1, 64,  2048, 3,      8, 512,   32, 12, 256),
        entry("perl",   321, 12, 5, 256, 32, 3, 4, 190,     1, 8,   2048, 3,     16, 64,   128,  7, 128),
        entry("twolf",  172, 6, 5, 512,  64, 1, 2, 330,     8, 64,   128, 3,      4, 128, 2048, 12, 256),
        entry("vortex", 213, 8, 7, 512,  32, 2, 4, 270,     4, 32,  1024, 5,     16, 128,  128,  6, 256),
        entry("vpr",    172, 6, 5, 256,  64, 1, 2, 300,     2, 32,   128, 2,      8, 128, 1024, 12,  64),
    };
    return palette;
}

const CoreConfig &
coreConfigByName(const std::string &name)
{
    for (const auto &c : appendixAPalette())
        if (c.name == name)
            return c;
    fatal("unknown core type '%s'", name.c_str());
}

} // namespace contest
