#include "power/energy.hh"

namespace contest
{

double
staticPowerW(const CoreConfig &config,
             const EnergyCoefficients &coeffs)
{
    double l1_kb =
        static_cast<double>(config.l1d.capacityBytes()) / 1024.0;
    double l2_kb =
        static_cast<double>(config.l2.capacityBytes()) / 1024.0;
    return coeffs.baseStaticW
        + coeffs.staticPerRobEntryW * config.robSize
        + coeffs.staticPerIqEntryW * config.iqSize
        + coeffs.staticPerWidthW * config.width
        + coeffs.staticPerL1KbW * l1_kb
        + coeffs.staticPerL2KbW * l2_kb;
}

EnergyBreakdown
estimateEnergy(const CoreConfig &config, const CoreStats &stats,
               const ActivityCounts &activity, TimePs elapsed,
               const EnergyCoefficients &coeffs)
{
    EnergyBreakdown e;

    // watts x seconds = joules; elapsed is ps, so W x ps = 1e-12 J
    // = 1e-3 nJ.
    double seconds_e12 = static_cast<double>(elapsed); // picoseconds
    e.staticNj = staticPowerW(config, coeffs) * seconds_e12 * 1e-3;

    // Pipeline activity: injected instructions skip execution, so
    // they pay fetch/rename and commit but not issue/wakeup.
    auto executed = static_cast<double>(
        stats.retired >= stats.injected
            ? stats.retired - stats.injected
            : 0);
    auto retired = static_cast<double>(stats.retired);
    double width_scale =
        0.6 + 0.1 * static_cast<double>(config.width);
    e.pipelineNj = width_scale
        * (coeffs.fetchDecodeRenamePerInstNj * retired
           + coeffs.issueWakeupPerInstNj * executed
           + coeffs.commitPerInstNj * retired);

    // Cache traffic; access energy grows weakly with capacity.
    auto cache_scale = [](double kb) {
        return 1.0 + kb / 512.0;
    };
    double l1_kb =
        static_cast<double>(config.l1d.capacityBytes()) / 1024.0;
    double l2_kb =
        static_cast<double>(config.l2.capacityBytes()) / 1024.0;
    e.cacheNj = coeffs.l1AccessNj * cache_scale(l1_kb)
            * static_cast<double>(activity.l1Accesses)
        + coeffs.l1MissExtraNj
            * static_cast<double>(activity.l1Misses)
        + coeffs.l2AccessNj * cache_scale(l2_kb / 8.0)
            * static_cast<double>(activity.l2Accesses)
        + coeffs.l2MissExtraNj
            * static_cast<double>(activity.l2Misses);

    e.bpredNj = coeffs.bpredLookupNj
        * static_cast<double>(stats.condBranches);
    e.squashNj = coeffs.mispredictSquashNj
        * static_cast<double>(stats.mispredicts)
        * static_cast<double>(config.frontEndDepth)
        * static_cast<double>(config.width) / 16.0;

    e.contestNj = coeffs.grbBroadcastNj
            * static_cast<double>(activity.grbBroadcasts)
        + coeffs.injectNj
            * static_cast<double>(activity.injections);
    return e;
}

} // namespace contest
