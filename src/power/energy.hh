/**
 * @file
 * First-order energy model for cores and contesting systems.
 *
 * The paper positions contesting as a need-to-have mode that trades
 * power for single-thread performance ("robustness in how resources
 * are employed ... and how performance and power are balanced",
 * Section 1). This model makes that tradeoff measurable: static
 * energy scales with structure sizes and runtime, dynamic energy
 * with pipeline activity, cache traffic, mispredictions, and —
 * specific to contesting — global-result-bus broadcasts and
 * injections. Coefficients are stylized (70nm-era, McPAT-flavored)
 * but internally consistent, so *ratios* between configurations are
 * meaningful even though absolute joules are not calibrated.
 */

#ifndef CONTEST_POWER_ENERGY_HH
#define CONTEST_POWER_ENERGY_HH

#include <cstdint>

#include "core/config.hh"
#include "core/stats.hh"

namespace contest
{

/** Energy coefficients; defaults model a 70nm-class core. */
struct EnergyCoefficients
{
    /** @name Static power (watts) */
    /** @{ */
    double baseStaticW = 0.25;
    double staticPerRobEntryW = 0.0004;
    double staticPerIqEntryW = 0.0015;
    double staticPerWidthW = 0.12;
    double staticPerL1KbW = 0.0015;
    double staticPerL2KbW = 0.00015;
    /** @} */

    /** @name Dynamic energy (nanojoules per event) */
    /** @{ */
    double fetchDecodeRenamePerInstNj = 0.08;
    double issueWakeupPerInstNj = 0.05;
    double commitPerInstNj = 0.03;
    double l1AccessNj = 0.05;
    double l1MissExtraNj = 0.10;
    double l2AccessNj = 0.30;
    double l2MissExtraNj = 2.00;
    double mispredictSquashNj = 0.50;
    double bpredLookupNj = 0.01;
    /** Receiving + writing one injected result (rename-port write). */
    double injectNj = 0.02;
    /** Driving one result across the global result bus. */
    double grbBroadcastNj = 0.06;
    /** @} */
};

/** Energy of one core over one run, decomposed. */
struct EnergyBreakdown
{
    double staticNj = 0.0;
    double pipelineNj = 0.0; //!< fetch/rename/issue/commit activity
    double cacheNj = 0.0;
    double bpredNj = 0.0;
    double squashNj = 0.0;
    double contestNj = 0.0;  //!< GRB broadcasts + injections

    double
    totalNj() const
    {
        return staticNj + pipelineNj + cacheNj + bpredNj + squashNj
            + contestNj;
    }
};

/** Raw activity counters the model consumes. */
struct ActivityCounts
{
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t grbBroadcasts = 0;
    std::uint64_t injections = 0;
};

/**
 * Estimate the energy one core consumed over a run.
 *
 * @param config the core's configuration (structure sizes)
 * @param stats its pipeline statistics
 * @param activity cache / contesting activity counters
 * @param elapsed wall time the core was powered, in picoseconds
 * @param coeffs model coefficients
 */
EnergyBreakdown
estimateEnergy(const CoreConfig &config, const CoreStats &stats,
               const ActivityCounts &activity, TimePs elapsed,
               const EnergyCoefficients &coeffs = {});

/** Static power of a configuration in watts (for reporting). */
double staticPowerW(const CoreConfig &config,
                    const EnergyCoefficients &coeffs = {});

} // namespace contest

#endif // CONTEST_POWER_ENERGY_HH
