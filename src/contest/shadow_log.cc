#include "contest/shadow_log.hh"

#include <cstdio>

#include "common/log.hh"

namespace contest
{

namespace
{

const char *
className(ShadowClass cls)
{
    switch (cls) {
      case ShadowClass::FifoState: return "fifo-state";
      case ShadowClass::StoreQueue: return "store-queue";
      case ShadowClass::LeadFrontier: return "lead-frontier";
      case ShadowClass::ExceptionState: return "exception-state";
    }
    return "?";
}

thread_local CoreId tlShadowLane = kShadowGlobalOwner;

} // namespace

void
shadowSetCurrentLane(CoreId lane)
{
    tlShadowLane = lane;
}

void
shadowClearCurrentLane()
{
    tlShadowLane = kShadowGlobalOwner;
}

CoreId
shadowCurrentLane()
{
    return tlShadowLane;
}

void
ShadowAccessLog::beginWindow(unsigned num_lanes)
{
    panic_if(open_, "shadow log window opened while one is open");
    perLane_.resize(num_lanes);
    for (auto &v : perLane_)
        v.clear();
    open_ = true;
    ++windows_;
}

void
ShadowAccessLog::record(CoreId lane, CoreId owner, ShadowClass cls,
                        bool write, const char *site)
{
    if (!open_ || lane >= perLane_.size())
        return; // sequential phase, or not a lane thread
    perLane_[lane].push_back(ShadowAccess{owner, cls, write, site});
}

void
ShadowAccessLog::verifyAndClose()
{
    if (!open_)
        return;
    for (CoreId lane = 0; lane < perLane_.size(); ++lane) {
        for (const ShadowAccess &a : perLane_[lane]) {
            ++checked_;
            if (!a.write)
                continue;
            char owner[32];
            if (a.owner == kShadowGlobalOwner)
                std::snprintf(owner, sizeof(owner), "all lanes");
            else
                std::snprintf(owner, sizeof(owner), "core %u",
                              static_cast<unsigned>(a.owner));
            panic_if(a.owner != lane,
                     "window-phase violation: lane %u wrote %s state "
                     "owned by %s in window %llu at %s; in-window "
                     "mutations must be deferred to the commit phase",
                     static_cast<unsigned>(lane), className(a.cls),
                     owner,
                     static_cast<unsigned long long>(windows_),
                     a.site);
        }
    }
    open_ = false;
    ++verified_;
}

} // namespace contest
