/**
 * @file
 * Configuration of a contesting system (paper Section 4).
 */

#ifndef CONTEST_CONTEST_CONFIG_HH
#define CONTEST_CONTEST_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "core/ooo_core.hh"

namespace contest
{

/** Knobs of the contesting machinery shared by all cores. */
struct ContestConfig
{
    /**
     * Core-to-core propagation latency of the global result buses,
     * in picoseconds. The paper's baseline is 1 ns (three cycles of
     * a 3 GHz core); Figure 8 sweeps it up to 100 ns.
     */
    TimePs grbLatencyPs{1000};

    /**
     * Result FIFO capacity in entries. This bounds the lagging
     * distance (Section 4.1.4): a core whose FIFO overflows cannot
     * keep up with the leader and is a saturated lagger.
     */
    std::size_t fifoCapacity = 8192;

    /** Synchronizing store queue capacity (Section 4.2). */
    std::size_t storeQueueCapacity = 4096;

    /** How popped results complete instructions (Section 4.1.3). */
    InjectionStyle injectionStyle = InjectionStyle::PortSteal;

    /** Enable the Figure 5 early-branch-resolution corner case. */
    bool earlyBranchResolve = true;

    /** Park saturated laggers instead of letting them drop results
     *  (Section 4.1.4's "disabling contesting mode"). */
    bool parkSaturatedLaggers = true;

    /** Cost of the parallelized exception handler, once every
     *  contesting core has reached the exception (Section 4.3). */
    TimePs syscallHandlerPs{20'000};

    /**
     * Period of asynchronous external interrupts in picoseconds;
     * 0 disables them. Interrupts use the paper's
     * terminate-and-refork approach (Section 4.3): the designated
     * core (core 0) services the interrupt, the redundant threads
     * on the other cores are terminated, and all cores refork at
     * the designated core's retired position.
     */
    TimePs interruptPeriodPs{};

    /** Service time of one asynchronous interrupt. */
    TimePs interruptHandlerPs{500'000};

    /**
     * @name Windowed-scheduling knobs (DESIGN.md §14)
     *
     * These shape only the *schedule* of the windowed parallel path
     * — how long each inert window may run and how the scheduler
     * backs off after degenerate horizons. Results are bit-identical
     * across all settings (commit replays events in sequential tick
     * order regardless of window size), which is why none of them
     * participate in the ResultCache key.
     */
    /** @{ */

    /**
     * Upper limit on the per-window tick cap. The adaptive scheduler
     * starts each run at initialWindowTicks and doubles the cap
     * after every cleanly committed window up to this value, so
     * long inert stretches amortize the per-window horizon + commit
     * overhead over ever-larger quanta.
     */
    std::uint64_t maxWindowTicks = std::uint64_t{1} << 16;

    /** Starting value of the adaptive per-window tick cap. */
    std::uint64_t initialWindowTicks = 4096;

    /**
     * Sequential-burst hysteresis: after a degenerate window (the
     * horizon proves no inert span exists) the oracle runs this many
     * seqSteps before re-attempting a window, instead of paying a
     * horizon computation every single step. Consecutive degenerate
     * attempts double the burst up to maxSeqBurstTicks; a committed
     * window resets it.
     */
    std::uint64_t seqBurstTicks = 32;  // contest-lint: allow(bare-u64-quantity)

    /** Upper limit of the hysteresis burst length. */
    std::uint64_t maxSeqBurstTicks = 4096;  // contest-lint: allow(bare-u64-quantity)

    /** @} */

    /**
     * Deadlock watchdog: panic after this many simulated core ticks
     * without the retire frontier advancing. The budget counts
     * *simulated* ticks including fast-forwarded ones — an elided
     * idle stretch spends it exactly like per-cycle stepping, so
     * idle-cycle skipping can neither mask a deadlock nor falsely
     * trigger the panic. Large enough that the slowest palette core
     * at the longest Figure 8 bus latency never trips it; tests
     * shrink it to exercise the watchdog quickly.
     */
    std::uint64_t deadlockStuckTicks = 40'000'000;
};

} // namespace contest

#endif // CONTEST_CONTEST_CONFIG_HH
