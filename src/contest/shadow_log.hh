/**
 * @file
 * ShadowAccessLog — the dynamic half of the window-phase discipline
 * analyzer (DESIGN.md §12).
 *
 * The static call-graph rule in contest_lint proves, up to its
 * annotations, that nothing on the window tick path mutates shared
 * contest state. This log re-verifies the annotated boundary at
 * runtime: under CONTEST_CHECK_WINDOWS every shared contest-state
 * access in CoreContestUnit / ContestSystem records a (lane, owner,
 * address-class) tuple, and commitWindow checks — before replaying
 * any deferred event — that no lane touched state it does not own.
 *
 * This is a purpose-built race detector, not a TSan substitute: the
 * lanes are data-race-free by construction (each writes only its own
 * vectors), so TSan structurally cannot see the hazard. The hazard
 * is *semantic* — a mutation applied inside a window instead of the
 * deterministic (time, core-id) commit order — and only shows up as
 * a bit-level divergence thousands of windows later. The shadow log
 * catches it at the exact window, lane, and call site.
 *
 * All hooks compile to nothing unless CONTEST_CHECK_WINDOWS is
 * defined (the CMake option of the same name).
 */

#ifndef CONTEST_CONTEST_SHADOW_LOG_HH
#define CONTEST_CONTEST_SHADOW_LOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** Which shared contest structure an access touched. */
enum class ShadowClass : std::uint8_t
{
    FifoState,      //!< a core's result-fifo set (GRB endpoint)
    StoreQueue,     //!< the synchronizing store queue
    LeadFrontier,   //!< the leader/frontier bookkeeping
    ExceptionState, //!< the rendezvous exception coordinator
};

/** Owner sentinel: state shared by every lane (store queue,
 *  frontier, exceptions) rather than owned by one core. */
inline constexpr CoreId kShadowGlobalOwner = ~CoreId{0};

/** One recorded access to shared contest state. */
struct ShadowAccess
{
    CoreId owner = 0; //!< whose state (kShadowGlobalOwner = shared)
    ShadowClass cls = ShadowClass::FifoState;
    bool write = false;
    const char *site = ""; //!< static string naming the call site
};

/**
 * Per-window access log. Lanes append to disjoint per-lane vectors
 * (race-free by construction); the coordinator thread opens the
 * window, and commitWindow verifies and closes it on the same
 * thread after the lanes have joined.
 *
 * The invariant verified per window: a lane may write only state it
 * owns — owner == lane, never another core's, never the global
 * classes. Reads of global state are legal (the window horizon
 * froze it); writes are not.
 */
class ShadowAccessLog
{
  public:
    /** Start a window; accesses record until verifyAndClose. */
    void beginWindow(unsigned num_lanes);

    /**
     * Record one access on behalf of @p lane. No-op when no window
     * is open or @p lane is not a lane thread (the coordinator's
     * own sequential-phase accesses are exempt by construction).
     */
    void record(CoreId lane, CoreId owner, ShadowClass cls,
                bool write, const char *site);

    /**
     * Panic (naming lane, window, and call site) on the first
     * cross-lane write recorded in the open window, then close it.
     * Quiet when no window is open, so sequential runs — which
     * never open one — verify trivially.
     */
    void verifyAndClose();

    /** Windows verified conflict-free so far. */
    std::uint64_t windowsVerified() const { return verified_; }

    /** Accesses checked across all verified windows. */
    std::uint64_t accessesChecked() const { return checked_; }

  private:
    std::vector<std::vector<ShadowAccess>> perLane_;
    bool open_ = false;
    std::uint64_t windows_ = 0;
    std::uint64_t verified_ = 0;
    std::uint64_t checked_ = 0;
};

/** Bind the calling thread to @p lane for shadow recording. */
void shadowSetCurrentLane(CoreId lane);

/** Unbind the calling thread (coordinator / lane join). */
void shadowClearCurrentLane();

/** Lane bound to the calling thread, or kShadowGlobalOwner. */
CoreId shadowCurrentLane();

} // namespace contest

/**
 * Instrumentation hook: record an access to shared contest state on
 * behalf of whatever lane the calling thread is bound to. Expands
 * to nothing outside CONTEST_CHECK_WINDOWS builds, so the hot path
 * pays zero cost in release and in the default debug build.
 */
#ifdef CONTEST_CHECK_WINDOWS
#define CONTEST_SHADOW_RECORD(log, owner, cls, write, site)           \
    (log).record(::contest::shadowCurrentLane(), (owner),             \
                 ::contest::ShadowClass::cls, (write), (site))
#else
#define CONTEST_SHADOW_RECORD(log, owner, cls, write, site)           \
    do {                                                              \
    } while (false)
#endif

#endif // CONTEST_CONTEST_SHADOW_LOG_HH
