#include "contest/unit.hh"

#include <algorithm>

#include "contest/system.hh"

namespace contest
{

CoreContestUnit::CoreContestUnit(CoreId self_id,
                                 const ContestConfig &contest_config,
                                 ContestSystem *owner,
                                 unsigned num_cores)
    : self(self_id), cfg(contest_config), sys(owner)
{
    fatal_if(owner == nullptr, "CoreContestUnit needs a system");
    fifos.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        fifos.emplace_back(cfg.fifoCapacity);
}

InstSeq
CoreContestUnit::maxPopCounter() const
{
    InstSeq max_pop{};
    for (std::size_t c = 0; c < fifos.size(); ++c)
        if (c != self)
            max_pop = std::max(max_pop, fifos[c].headSeq());
    return max_pop;
}

FetchOutcome
CoreContestUnit::onFetch(InstSeq seq, TimePs now)
{
    FetchOutcome out;
    if (stats_.saturated)
        return out;

    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        // Scenario #1: late results are popped and discarded.
        stats_.discarded += fifo.discardBelow(seq);
        // Scenario #2: the pop counter has caught the fetch counter
        // and the head result has physically arrived — pair it with
        // this fetch and complete the instruction early.
        if (!out.injected && fifo.headSeq() == seq
            && fifo.headArrived(now)) {
            fifo.pop();
            ++stats_.paired;
            out.injected = true;
        }
    }
    return out;
}

std::optional<TimePs>
CoreContestUnit::externalBranchResolve(InstSeq seq, TimePs now)
{
    (void)now;
    if (stats_.saturated || !cfg.earlyBranchResolve)
        return std::nullopt;

    std::optional<TimePs> best;
    std::optional<CoreId> best_src;
    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        stats_.discarded += fifo.discardBelow(seq);
        if (fifo.headSeq() == seq) {
            auto arrival = fifo.headArrival();
            if (arrival && (!best || *arrival < *best)) {
                best = arrival;
                best_src = static_cast<CoreId>(c);
            }
        }
    }
    // Remember which source won: several FIFOs can hold the same
    // head seq, and the core will confirm against the arrival time
    // we just returned. Popping any other FIFO on confirm would pair
    // a result that arrives later (or not at all).
    earlyResolveSrc = best_src;
    earlyResolveSeq = seq;
    return best;
}

void
CoreContestUnit::confirmEarlyResolve(InstSeq seq, TimePs now)
{
    // Pop the retired branch instance that resolved us early; the
    // pop counter now equals the restored fetch counter, so the
    // next fetch pairs in Scenario #2. Only the FIFO whose arrival
    // won externalBranchResolve may be popped — another source can
    // hold the same head seq with a result still on the bus.
    panic_if(!earlyResolveSrc || earlyResolveSeq != seq,
             "confirmEarlyResolve(%llu): no armed resolution "
             "(armed seq %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(earlyResolveSeq));
    ResultFifo &fifo = fifos[*earlyResolveSrc];
    panic_if(fifo.headSeq() != seq || !fifo.headArrived(now),
             "confirmEarlyResolve(%llu): source %u no longer holds "
             "the arrived branch",
             static_cast<unsigned long long>(seq), *earlyResolveSrc);
    fifo.pop();
    ++stats_.paired;
    earlyResolveSrc.reset();
}

void
CoreContestUnit::onRetire(InstSeq seq, const TraceInst &inst,
                          TimePs now)
{
    (void)inst;
    sys->noteRetire(self, seq);
    if (stats_.saturated)
        return;
    ++stats_.broadcasts;
    sys->broadcast(self, seq, now);
}

bool
CoreContestUnit::storeCanCommit(TimePs)
{
    if (stats_.saturated)
        return true;
    return sys->storeQueue().canAccept(self);
}

void
CoreContestUnit::onStoreCommit(Addr addr, TimePs)
{
    if (stats_.saturated)
        return;
    sys->storeQueue().performStore(self, addr);
}

std::optional<TimePs>
CoreContestUnit::onSyscall(InstSeq seq, TimePs now)
{
    if (stats_.saturated)
        return now;
    return sys->exceptions().arrive(self, seq, now);
}

void
CoreContestUnit::receiveResult(CoreId src, InstSeq seq,
                               TimePs arrival)
{
    if (stats_.saturated)
        return;
    panic_if(src == self, "core %u received its own result", self);
    if (fifos[src].push(seq, arrival))
        return;

    // The FIFO is full. If the buffered entries are already behind
    // this core's fetch counter they are late results that would be
    // discarded at the next fetch anyway (the core may simply be
    // stalled); dropping them is Scenario #1 behaviour, not
    // saturation.
    if (core != nullptr) {
        stats_.discarded +=
            fifos[src].discardBelow(core->nextFetchSeq());
        if (fifos[src].push(seq, arrival))
            return;
    }

    // Genuine overflow: this core cannot sustain the leader's
    // retirement rate. Disable contesting mode for it (Sec. 4.1.4),
    // or — if parking is disabled for ablation — drop the oldest
    // buffered result to keep the stream contiguous, abandoning the
    // chance to pair it.
    if (cfg.parkSaturatedLaggers) {
        park(arrival);
    } else {
        fifos[src].pop();
        ++stats_.discarded;
        bool pushed = fifos[src].push(seq, arrival);
        panic_if(!pushed, "ResultFifo refill failed after drop");
    }
}

void
CoreContestUnit::reforkTo(InstSeq seq)
{
    earlyResolveSrc.reset();
    for (auto &fifo : fifos)
        fifo.seekTo(seq);
}

void
CoreContestUnit::park(TimePs now)
{
    if (stats_.saturated)
        return;
    stats_.saturated = true;
    stats_.parkedAt = now;
    earlyResolveSrc.reset();
    for (auto &fifo : fifos)
        fifo.clear();
    sys->corePark(self, now);
}

} // namespace contest
