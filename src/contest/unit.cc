#include "contest/unit.hh"

#include <algorithm>

#include "contest/system.hh"

namespace contest
{

CoreContestUnit::CoreContestUnit(CoreId self_id,
                                 const ContestConfig &contest_config,
                                 ContestSystem *owner,
                                 unsigned num_cores)
    : self(self_id), cfg(contest_config), sys(owner)
{
    fatal_if(owner == nullptr, "CoreContestUnit needs a system");
    fifos.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        fifos.emplace_back(cfg.fifoCapacity);
}

InstSeq
CoreContestUnit::maxPopCounter() const
{
    InstSeq max_pop = 0;
    for (std::size_t c = 0; c < fifos.size(); ++c)
        if (c != self)
            max_pop = std::max(max_pop, fifos[c].headSeq());
    return max_pop;
}

FetchOutcome
CoreContestUnit::onFetch(InstSeq seq, TimePs now)
{
    FetchOutcome out;
    if (stats_.saturated)
        return out;

    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        // Scenario #1: late results are popped and discarded.
        stats_.discarded += fifo.discardBelow(seq);
        // Scenario #2: the pop counter has caught the fetch counter
        // and the head result has physically arrived — pair it with
        // this fetch and complete the instruction early.
        if (!out.injected && fifo.headSeq() == seq
            && fifo.headArrived(now)) {
            fifo.pop();
            ++stats_.paired;
            out.injected = true;
        }
    }
    return out;
}

std::optional<TimePs>
CoreContestUnit::externalBranchResolve(InstSeq seq, TimePs now)
{
    (void)now;
    if (stats_.saturated || !cfg.earlyBranchResolve)
        return std::nullopt;

    std::optional<TimePs> best;
    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        stats_.discarded += fifo.discardBelow(seq);
        if (fifo.headSeq() == seq) {
            auto arrival = fifo.headArrival();
            if (arrival && (!best || *arrival < *best))
                best = arrival;
        }
    }
    return best;
}

void
CoreContestUnit::confirmEarlyResolve(InstSeq seq, TimePs now)
{
    (void)now;
    // Pop the retired branch instance that resolved us early; the
    // pop counter now equals the restored fetch counter, so the
    // next fetch pairs in Scenario #2.
    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        if (fifo.headSeq() == seq && !fifo.empty()) {
            fifo.pop();
            ++stats_.paired;
            return;
        }
    }
    panic("confirmEarlyResolve(%llu): no FIFO holds the branch",
          static_cast<unsigned long long>(seq));
}

void
CoreContestUnit::onRetire(InstSeq seq, const TraceInst &inst,
                          TimePs now)
{
    (void)inst;
    sys->noteRetire(self, seq);
    if (stats_.saturated)
        return;
    ++stats_.broadcasts;
    sys->broadcast(self, seq, now);
}

bool
CoreContestUnit::storeCanCommit(TimePs)
{
    if (stats_.saturated)
        return true;
    return sys->storeQueue().canAccept(self);
}

void
CoreContestUnit::onStoreCommit(Addr addr, TimePs)
{
    if (stats_.saturated)
        return;
    sys->storeQueue().performStore(self, addr);
}

std::optional<TimePs>
CoreContestUnit::onSyscall(InstSeq seq, TimePs now)
{
    if (stats_.saturated)
        return now;
    return sys->exceptions().arrive(self, seq, now);
}

void
CoreContestUnit::receiveResult(CoreId src, InstSeq seq,
                               TimePs arrival)
{
    if (stats_.saturated)
        return;
    panic_if(src == self, "core %u received its own result", self);
    if (fifos[src].push(seq, arrival))
        return;

    // The FIFO is full. If the buffered entries are already behind
    // this core's fetch counter they are late results that would be
    // discarded at the next fetch anyway (the core may simply be
    // stalled); dropping them is Scenario #1 behaviour, not
    // saturation.
    if (core != nullptr) {
        stats_.discarded +=
            fifos[src].discardBelow(core->nextFetchSeq());
        if (fifos[src].push(seq, arrival))
            return;
    }

    // Genuine overflow: this core cannot sustain the leader's
    // retirement rate. Disable contesting mode for it (Sec. 4.1.4),
    // or — if parking is disabled for ablation — drop the oldest
    // buffered result to keep the stream contiguous, abandoning the
    // chance to pair it.
    if (cfg.parkSaturatedLaggers) {
        park(arrival);
    } else {
        fifos[src].pop();
        ++stats_.discarded;
        bool pushed = fifos[src].push(seq, arrival);
        panic_if(!pushed, "ResultFifo refill failed after drop");
    }
}

void
CoreContestUnit::reforkTo(InstSeq seq)
{
    for (auto &fifo : fifos)
        fifo.seekTo(seq);
}

void
CoreContestUnit::park(TimePs now)
{
    if (stats_.saturated)
        return;
    stats_.saturated = true;
    stats_.parkedAt = now;
    for (auto &fifo : fifos)
        fifo.clear();
    sys->corePark(self, now);
}

} // namespace contest
