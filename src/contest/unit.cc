// contest-lint: allow-file(window-phase)
//
// This file is the audited boundary between the window phase and the
// sequential phase. Every cross-core call below (noteRetire,
// performStore, broadcast, exceptions().arrive) sits behind an
// `inWindow` guard that defers it into the per-lane deferred-event
// log instead, and the per-lane SoA tick/event arrays are own-lane
// state by construction. The static analyzer therefore does not
// traverse past this file; two dynamic checks re-verify the waiver
// on every run: receiveResult/onSyscall panic if reached in-window,
// and the CONTEST_CHECK_WINDOWS shadow access log proves zero
// cross-lane writes at each window commit (DESIGN.md §12).

#include "contest/unit.hh"

#include <algorithm>

#include "common/env.hh"
#include "contest/system.hh"

namespace contest
{

CoreContestUnit::CoreContestUnit(CoreId self_id,
                                 const ContestConfig &contest_config,
                                 ContestSystem *owner,
                                 unsigned num_cores)
    : self(self_id), cfg(contest_config), sys(owner)
{
    fatal_if(owner == nullptr, "CoreContestUnit needs a system");
    fifos.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        fifos.emplace_back(cfg.fifoCapacity);
#ifdef CONTEST_CHECK_WINDOWS
    injectInWindowStores = envFlag("CONTEST_CHECK_WINDOWS_INJECT");
#endif
}

InstSeq
CoreContestUnit::maxPopCounter() const
{
    InstSeq max_pop{};
    for (std::size_t c = 0; c < fifos.size(); ++c)
        if (c != self)
            max_pop = std::max(max_pop, fifos[c].headSeq());
    return max_pop;
}

FetchOutcome
CoreContestUnit::onFetch(InstSeq seq, TimePs now)
{
    FetchOutcome out;
    if (stats_.saturated)
        return out;
    noteWindowOp(seq, now);
    ++fifoGen;
    // Pops and discards below touch only this core's own FIFOs.
    CONTEST_SHADOW_RECORD(sys->shadowLog(), self, FifoState, true,
                          "CoreContestUnit::onFetch");

    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        // Scenario #1: late results are popped and discarded.
        stats_.discarded += fifo.discardBelow(seq);
        // Scenario #2: the pop counter has caught the fetch counter
        // and the head result has physically arrived — pair it with
        // this fetch and complete the instruction early.
        if (!out.injected && fifo.headSeq() == seq
            && fifo.headArrived(now)) {
            fifo.pop();
            ++stats_.paired;
            out.injected = true;
        }
    }
    return out;
}

std::optional<TimePs>
CoreContestUnit::externalBranchResolve(InstSeq seq, TimePs now)
{
    if (stats_.saturated || !cfg.earlyBranchResolve)
        return std::nullopt;
    noteWindowOp(seq, now);
    CONTEST_SHADOW_RECORD(sys->shadowLog(), self, FifoState, true,
                          "CoreContestUnit::externalBranchResolve");

    // Re-polled with no FIFO change since the last answer: the first
    // poll already performed every discard and arrival times are
    // fixed at push, so the remembered answer is exact.
    if (pollGen == fifoGen && pollSeq == seq) {
        earlyResolveSrc = pollBestSrc;
        earlyResolveSeq = seq;
        return pollBest;
    }

    std::optional<TimePs> best;
    std::optional<CoreId> best_src;
    for (std::size_t c = 0; c < fifos.size(); ++c) {
        if (c == self)
            continue;
        ResultFifo &fifo = fifos[c];
        stats_.discarded += fifo.discardBelow(seq);
        if (fifo.headSeq() == seq) {
            auto arrival = fifo.headArrival();
            if (arrival && (!best || *arrival < *best)) {
                best = arrival;
                best_src = static_cast<CoreId>(c);
            }
        }
    }
    // Remember which source won: several FIFOs can hold the same
    // head seq, and the core will confirm against the arrival time
    // we just returned. Popping any other FIFO on confirm would pair
    // a result that arrives later (or not at all).
    earlyResolveSrc = best_src;
    earlyResolveSeq = seq;
    pollGen = fifoGen;
    pollSeq = seq;
    pollBest = best;
    pollBestSrc = best_src;
    return best;
}

void
CoreContestUnit::confirmEarlyResolve(InstSeq seq, TimePs now)
{
    // Pop the retired branch instance that resolved us early; the
    // pop counter now equals the restored fetch counter, so the
    // next fetch pairs in Scenario #2. Only the FIFO whose arrival
    // won externalBranchResolve may be popped — another source can
    // hold the same head seq with a result still on the bus.
    panic_if(!earlyResolveSrc || earlyResolveSeq != seq,
             "confirmEarlyResolve(%llu): no armed resolution "
             "(armed seq %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(earlyResolveSeq));
    ResultFifo &fifo = fifos[*earlyResolveSrc];
    panic_if(fifo.headSeq() != seq || !fifo.headArrived(now),
             "confirmEarlyResolve(%llu): source %u no longer holds "
             "the arrived branch",
             static_cast<unsigned long long>(seq), *earlyResolveSrc);
    CONTEST_SHADOW_RECORD(sys->shadowLog(), self, FifoState, true,
                          "CoreContestUnit::confirmEarlyResolve");
    ++fifoGen;
    fifo.pop();
    ++stats_.paired;
    earlyResolveSrc.reset();
}

void
CoreContestUnit::onRetire(InstSeq seq, const TraceInst &inst,
                          TimePs now)
{
    (void)inst;
    if (inWindow) {
        // Deferred: the lead-frontier update and the GRB broadcast
        // are replayed by the commit phase in (time, core-id) order.
        // A window never parks a core, so the unit is live here.
        panic_if(stats_.saturated,
                 "core %u retired while parked inside a window", self);
        ++stats_.broadcasts;
        appendWindowEvent(false, seq.count());
        return;
    }
    // Sequential path: the system applies this immediately, in the
    // very tick order the calendar just decided.
    sys->noteRetire(self, seq);
    if (stats_.saturated)
        return;
    ++stats_.broadcasts;
    sys->broadcast(self, seq, now);
}

bool
CoreContestUnit::storeCanCommit(TimePs)
{
    // The window bound stops short of the first store the queue
    // could refuse, so inside a window the answer is always yes —
    // exactly what the sequential schedule would have answered.
    // (Reading frozen shared state in-window is legal; record it so
    // the shadow log exercises its read path on clean runs.)
    CONTEST_SHADOW_RECORD(sys->shadowLog(), kShadowGlobalOwner,
                          StoreQueue, false,
                          "CoreContestUnit::storeCanCommit");
    if (inWindow || stats_.saturated)
        return true;
    return sys->storeQueue().canAccept(self);
}

void
CoreContestUnit::onStoreCommit(Addr addr, TimePs)
{
    if (inWindow && !injectInWindowStores) {
        appendWindowEvent(true, addr);
        return;
    }
    if (stats_.saturated)
        return;
    // Sequential path, ordered by the calendar like noteRetire above.
    CONTEST_SHADOW_RECORD(sys->shadowLog(), kShadowGlobalOwner,
                          StoreQueue, true,
                          "CoreContestUnit::onStoreCommit");
    sys->storeQueue().performStore(self, addr);
}

std::optional<TimePs>
CoreContestUnit::onSyscall(InstSeq seq, TimePs now)
{
    panic_if(inWindow,
             "core %u reached syscall %llu inside a window (the "
             "window bound must stop short of exceptions)",
             self, static_cast<unsigned long long>(seq));
    if (stats_.saturated)
        return now;
    CONTEST_SHADOW_RECORD(sys->shadowLog(), kShadowGlobalOwner,
                          ExceptionState, true,
                          "CoreContestUnit::onSyscall");
    return sys->exceptions().arrive(self, seq, now);
}

void
CoreContestUnit::receiveResult(CoreId src, InstSeq seq,
                               TimePs arrival)
{
    panic_if(inWindow,
             "core %u received a live broadcast inside a window "
             "(broadcasts must be deferred to the commit phase)",
             self);
    if (stats_.saturated)
        return;
    panic_if(src == self, "core %u received its own result", self);
    CONTEST_SHADOW_RECORD(sys->shadowLog(), self, FifoState, true,
                          "CoreContestUnit::receiveResult");
    // Only a push that lands at the head (empty FIFO) can change a
    // branch-resolve poll's answer; a deeper entry is invisible
    // until the head moves (every head move bumps fifoGen itself).
    if (fifos[src].empty())
        ++fifoGen;
    if (fifos[src].push(seq, arrival))
        return;
    ++fifoGen; // overflow handling below pops and discards

    // The FIFO is full. If the buffered entries are already behind
    // this core's fetch counter they are late results that would be
    // discarded at the next fetch anyway (the core may simply be
    // stalled); dropping them is Scenario #1 behaviour, not
    // saturation.
    if (core != nullptr) {
        stats_.discarded +=
            fifos[src].discardBelow(core->nextFetchSeq());
        if (fifos[src].push(seq, arrival))
            return;
    }

    // Genuine overflow: this core cannot sustain the leader's
    // retirement rate. Disable contesting mode for it (Sec. 4.1.4),
    // or — if parking is disabled for ablation — drop the oldest
    // buffered result to keep the stream contiguous, abandoning the
    // chance to pair it.
    if (cfg.parkSaturatedLaggers) {
        park(arrival);
    } else {
        fifos[src].pop();
        ++stats_.discarded;
        bool pushed = fifos[src].push(seq, arrival);
        panic_if(!pushed, "ResultFifo refill failed after drop");
    }
}

void
CoreContestUnit::beginWindow(TimePs horizon)
{
    (void)horizon;
    inWindow = true;
    winTickAt.clear();
    winTickSkipped.clear();
    winTickEvEnd.clear();
    winEvArg.clear();
    winEvStoreW.clear();
    lastOpValid = false;
}

void
CoreContestUnit::endWindow()
{
    inWindow = false;
}

void
CoreContestUnit::noteWindowOp(InstSeq seq, TimePs now)
{
    if (!inWindow)
        return;
    lastOpValid = true;
    lastOpAt = now;
    lastOpArg = seq;
}

void
CoreContestUnit::appendWindowEvent(bool is_store, std::uint64_t arg)
{
    const std::size_t i = winEvArg.size();
    if ((i & 63) == 0)
        winEvStoreW.push_back(0);
    if (is_store)
        bitSet(winEvStoreW, i);
    winEvArg.push_back(arg);
}

bool
CoreContestUnit::reserveWindowLogs(std::size_t ticks,
                                   std::size_t events)
{
    const bool grew = ticks > winTickAt.capacity()
        || events > winEvArg.capacity()
        || events / 64 + 1 > winEvStoreW.capacity();
    winTickAt.reserve(ticks);
    winTickSkipped.reserve(ticks);
    winTickEvEnd.reserve(ticks);
    winEvArg.reserve(events);
    winEvStoreW.reserve(events / 64 + 1);
    return grew;
}

void
CoreContestUnit::recordTick(TimePs at, Cycles skipped)
{
    winTickAt.push_back(at);
    winTickSkipped.push_back(skipped);
    winTickEvEnd.push_back(static_cast<std::uint32_t>(winEvArg.size()));
}

void
CoreContestUnit::commitDeferredResult(CoreId src, InstSeq seq,
                                      TimePs arrival, TimePs push_at)
{
    panic_if(stats_.saturated,
             "deferred result delivered to parked core %u", self);
    panic_if(src == self, "core %u received its own result", self);

    CONTEST_SHADOW_RECORD(sys->shadowLog(), self, FifoState, true,
                          "CoreContestUnit::commitDeferredResult");
    ++fifoGen;
    bool pushed = fifos[src].push(seq, arrival);
    panic_if(!pushed,
             "window commit overflowed FIFO %u->%u (the window "
             "bound must keep pushes within the free slack)",
             src, self);

    // Scenario #1 replay: an own FIFO operation that ordered after
    // the push edge (time, then core id) would have popped and
    // discarded this entry in the sequential schedule — its argument
    // is provably above every in-window push (the "late" regime of
    // the pair bound). Ops that ordered before the push leave it
    // buffered, exactly as live pushing would have.
    bool op_after = lastOpValid
        && (push_at < lastOpAt
            || (push_at == lastOpAt && src < self));
    if (op_after && seq < lastOpArg) {
        panic_if(fifos[src].headSeq() != seq,
                 "window commit: deferred discard of %llu is not at "
                 "the FIFO head",
                 static_cast<unsigned long long>(seq));
        fifos[src].pop();
        ++stats_.discarded;
    }
}

void
CoreContestUnit::reforkTo(InstSeq seq)
{
    ++fifoGen;
    earlyResolveSrc.reset();
    for (auto &fifo : fifos)
        fifo.seekTo(seq);
}

void
CoreContestUnit::park(TimePs now)
{
    if (stats_.saturated)
        return;
    stats_.saturated = true;
    stats_.parkedAt = now;
    ++fifoGen;
    earlyResolveSrc.reset();
    for (auto &fifo : fifos)
        fifo.clear();
    sys->corePark(self, now);
}

} // namespace contest
