/**
 * @file
 * Indexed binary min-heap over the cores' next clock edges.
 *
 * ContestSystem::run used to re-scan every core's next_tick each
 * iteration; with idle-cycle skipping the scheduler also needs
 * keyed updates (a skipping core's edge jumps far ahead) and
 * removal (parked cores leave the contest). The heap orders edges
 * by (time, core id) so ties deterministically go to the lower core
 * id — exactly the order the old linear scan produced.
 */

#ifndef CONTEST_CONTEST_CALENDAR_HH
#define CONTEST_CONTEST_CALENDAR_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace contest
{

/** Min-calendar of per-core clock edges, (time, id)-ordered. */
class TickCalendar
{
  public:
    explicit TickCalendar(std::size_t num_cores)
        : pos(num_cores, npos)
    {
        heap.reserve(num_cores);
    }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    bool
    contains(CoreId core) const
    {
        return core < pos.size() && pos[core] != npos;
    }

    /** The earliest edge's core; ties favor the lower core id. */
    CoreId
    minCore() const
    {
        panic_if(heap.empty(), "TickCalendar::minCore on empty heap");
        return heap.front().core;
    }

    /** The earliest edge's time. */
    TimePs
    minTime() const
    {
        panic_if(heap.empty(), "TickCalendar::minTime on empty heap");
        return heap.front().time;
    }

    /** The scheduled edge of @p core (which must be present). The
     *  windowed scheduler reads every member's edge to bound the
     *  provably-inert span. */
    TimePs
    timeOf(CoreId core) const
    {
        panic_if(!contains(core),
                 "TickCalendar::timeOf(%u): core not scheduled", core);
        return heap[pos[core]].time;
    }

    /** Insert @p core or move its edge to @p time. */
    void
    set(CoreId core, TimePs time)
    {
        panic_if(core >= pos.size(), "TickCalendar core %u out of %zu",
                 core, pos.size());
        std::size_t i = pos[core];
        if (i == npos) {
            heap.push_back(Edge{time, core});
            pos[core] = heap.size() - 1;
            siftUp(heap.size() - 1);
            return;
        }
        TimePs old = heap[i].time;
        heap[i].time = time;
        if (time < old)
            siftUp(i);
        else
            siftDown(i);
    }

    /** Drop @p core from the calendar (parked). No-op if absent. */
    void
    remove(CoreId core)
    {
        if (!contains(core))
            return;
        std::size_t i = pos[core];
        pos[core] = npos;
        Edge last = heap.back();
        heap.pop_back();
        if (i == heap.size())
            return; // removed the tail
        heap[i] = last;
        pos[last.core] = i;
        siftUp(i);
        siftDown(i);
    }

  private:
    struct Edge
    {
        TimePs time{};
        CoreId core = 0;
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    static bool
    before(const Edge &a, const Edge &b)
    {
        return a.time != b.time ? a.time < b.time : a.core < b.core;
    }

    void
    place(std::size_t i, const Edge &e)
    {
        heap[i] = e;
        pos[e.core] = i;
    }

    void
    siftUp(std::size_t i)
    {
        Edge e = heap[i];
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!before(e, heap[parent]))
                break;
            place(i, heap[parent]);
            i = parent;
        }
        place(i, e);
    }

    void
    siftDown(std::size_t i)
    {
        Edge e = heap[i];
        const std::size_t n = heap.size();
        while (true) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && before(heap[child + 1], heap[child]))
                ++child;
            if (!before(heap[child], e))
                break;
            place(i, heap[child]);
            i = child;
        }
        place(i, e);
    }

    std::vector<Edge> heap;
    /** Heap index of each core, or npos when absent. */
    std::vector<std::size_t> pos;
};

} // namespace contest

#endif // CONTEST_CONTEST_CALENDAR_HH
