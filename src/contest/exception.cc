#include "contest/exception.hh"

#include "common/log.hh"

namespace contest
{

ExceptionCoordinator::ExceptionCoordinator(unsigned num_cores,
                                           TimePs handler_ps)
    : handlerPs(handler_ps), active(num_cores, true),
      numActive(num_cores)
{
    fatal_if(num_cores == 0,
             "ExceptionCoordinator needs at least one core");
}

bool
ExceptionCoordinator::complete(const Rendezvous &r) const
{
    // Every still-active core must have arrived; arrivals from cores
    // that have since been dropped do not block completion.
    for (std::size_t c = 0; c < active.size(); ++c)
        if (active[c] && !r.arrived[c])
            return false;
    return true;
}

std::optional<TimePs>
ExceptionCoordinator::arrive(CoreId core, InstSeq seq, TimePs now)
{
    panic_if(core >= active.size(),
             "ExceptionCoordinator: core %u out of range", core);

    auto [it, inserted] = pending.try_emplace(seq);
    Rendezvous &r = it->second;
    if (inserted)
        r.arrived.assign(active.size(), false);

    if (!r.arrived[core]) {
        r.arrived[core] = true;
        ++r.count;
    }

    if (!r.resumeAt && complete(r)) {
        // Last arrival wakes all sleeping handlers; the coordinated
        // handler then runs for handlerPs.
        r.resumeAt = now + handlerPs;
        ++numHandled;
    }

    if (!r.resumeAt)
        return std::nullopt;

    // Entries are kept for the lifetime of the run (a trace carries
    // only a handful of exceptions): a slower-clocked core may query
    // a completed rendezvous long after the others resumed.
    return *r.resumeAt;
}

void
ExceptionCoordinator::dropCore(CoreId core, TimePs now)
{
    panic_if(core >= active.size(),
             "ExceptionCoordinator: core %u out of range", core);
    if (!active[core])
        return;
    active[core] = false;
    --numActive;
    // A drop may complete rendezvous that were waiting on this core.
    for (auto &[seq, r] : pending) {
        (void)seq;
        if (!r.resumeAt && r.count > 0 && complete(r)) {
            r.resumeAt = now + handlerPs;
            ++numHandled;
        }
    }
}

} // namespace contest
