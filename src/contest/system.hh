/**
 * @file
 * An architectural contesting multi-core system (paper Figure 2):
 * N cores concurrently executing the same dynamic instruction
 * stream, cross-connected by global result buses, backed by a
 * synchronizing store queue at the shared level and a rendezvous
 * exception coordinator, all stepped time-synchronously on a global
 * picosecond timeline.
 */

#ifndef CONTEST_CONTEST_SYSTEM_HH
#define CONTEST_CONTEST_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "contest/calendar.hh"
#include "contest/config.hh"
#include "contest/exception.hh"
#include "contest/shadow_log.hh"
#include "contest/unit.hh"
#include "core/ooo_core.hh"
#include "core/stats.hh"
#include "mem/sync_store_queue.hh"
#include "power/energy.hh"
#include "trace/trace.hh"

namespace contest
{

/** Outcome of one contested execution. */
struct ContestResult
{
    /** Global time when the first core retired the whole trace. */
    TimePs timePs{};
    /** Instructions retired per nanosecond (the paper's IPT). */
    double ipt = 0.0;
    /** Per-core pipeline statistics. */
    std::vector<CoreStats> coreStats;
    /** Per-core contesting-unit statistics. */
    std::vector<UnitStats> unitStats;
    /**
     * Fraction of instructions each core retired first — how
     * actively each core led the contest.
     */
    std::vector<double> leadFraction;
    /** Number of times the leading core changed. */
    std::uint64_t leadChanges = 0;
    /** Stores merged to the shared level. */
    StoreSeq mergedStores{};
    /** Exceptions handled by the rendezvous handler. */
    std::uint64_t exceptionsHandled = 0;
    /** Asynchronous interrupts serviced (terminate-and-refork). */
    std::uint64_t interruptsHandled = 0;
    /** Per-core energy estimate for the run. */
    std::vector<EnergyBreakdown> energy;

    /** Total energy over all cores, in nanojoules. */
    double
    totalEnergyNj() const
    {
        double sum = 0.0;
        for (const auto &e : energy)
            sum += e.totalNj();
        return sum;
    }
};

/** N-way architectural contesting system. */
class ContestSystem
{
  public:
    /**
     * @param core_configs one configuration per contesting core
     * @param trace_ptr the shared dynamic instruction stream
     * @param contest_config contesting machinery configuration
     */
    ContestSystem(std::vector<CoreConfig> core_configs,
                  TracePtr trace_ptr,
                  const ContestConfig &contest_config = {});

    ~ContestSystem();

    ContestSystem(const ContestSystem &) = delete;
    ContestSystem &operator=(const ContestSystem &) = delete;

    /**
     * Run the contest to completion: execution ends when the first
     * core retires the final instruction. Statically mismatched
     * peak rates (Section 4.1.4) are reported through warn(); the
     * dynamic saturation detector parks offenders either way.
     *
     * @param contest_jobs worker-thread budget for intra-simulation
     *        parallelism: 1 runs the classic sequential event loop;
     *        >1 shards provably-inert windows of the timeline across
     *        up to that many threads (bit-identical results — the
     *        sequential loop is the validation oracle); 0 (default)
     *        reads CONTEST_CONTEST_JOBS.
     */
    ContestResult run(unsigned contest_jobs = 0);

    /** Access a core (valid after construction). */
    const OooCore &core(CoreId id) const { return *cores.at(id); }

    /** Access a core's contesting unit (valid after construction). */
    CoreContestUnit &unit(CoreId id) { return *units.at(id); }

    /** @name Services used by the per-core units */
    /** @{ */
    /** Route a retired result from @p from to every other core. */
    void broadcast(CoreId from, InstSeq seq, TimePs now);
    /** A unit parked itself as a saturated lagger. */
    void corePark(CoreId core, TimePs now);
    /** The shared synchronizing store queue. */
    SyncStoreQueue &storeQueue() { return *storeQ; }
    /** The exception coordinator. */
    ExceptionCoordinator &exceptions() { return *excCoord; }
    /** First core to retire each instruction (lead tracking). */
    void noteRetire(CoreId core, InstSeq seq);
    /** The window-phase shadow access log (hooks are no-ops unless
     *  the build defines CONTEST_CHECK_WINDOWS; DESIGN.md §12). */
    ShadowAccessLog &shadowLog() { return shadowLog_; }
    /** @} */

  private:
    /**
     * Mutable state of one run(): the event calendar, the eager-skip
     * records, finish/interrupt/watchdog bookkeeping. Factored out
     * of run() so the sequential oracle step and the windowed
     * parallel scheduler advance the same state.
     */
    struct RunState
    {
        explicit RunState(std::size_t n) : calendar(n), skipRec(n) {}

        TickCalendar calendar;

        /** A skipping core's latest eagerly-elided window (see
         *  rewindPastEdge). */
        struct SkipRecord
        {
            TimePs tickedAt{};
            Cycles scheduled{};
        };
        std::vector<SkipRecord> skipRec;

        bool noSkip = false;
        std::uint64_t parksSeen = 0;
        TimePs nextInterrupt{};

        TimePs finishTime{};
        CoreId finisher = 0;
        bool finished = false;

        /** Deadlock watchdog (simulated ticks since the retire
         *  frontier last advanced). */
        InstSeq lastFrontier{};
        std::uint64_t stuckTicks = 0;
    };

    /** One step of the sequential event loop: service a due
     *  interrupt or tick the earliest core, then do the park /
     *  finish / watchdog bookkeeping. The validation oracle for the
     *  windowed scheduler. */
    void seqStep(RunState &rs);

    /** Drive @p rs to completion with up to @p jobs-way windowed
     *  parallelism, falling back to seqStep for degenerate spans. */
    void runWindowed(RunState &rs, unsigned jobs);

    /**
     * Upper bound W1 of a provably-inert window starting at the
     * calendar's minimum: below W1 no core can finish, park, reach
     * an exception or interrupt edge, stall on the store queue, or
     * observe another core's in-window retirement other than as a
     * deferred (late, discardable) result. W1 <= the minimum edge
     * means no window exists (take a sequential step instead).
     */
    TimePs windowHorizon(const RunState &rs) const;

    /** Run one window if windowHorizon allows: advance every core
     *  with an edge below W1 on the worker group, then commit.
     *  Returns false (doing nothing) for degenerate spans. */
    bool executeWindow(RunState &rs, ContestWorkerGroup &group);

    /** Replay the window's deferred events in (time, core-id) order
     *  — the sequential tick order — and advance the calendar. */
    void commitWindow(RunState &rs, const std::vector<CoreId> &lanes,
                      const std::vector<TimePs> &lane_edges);

    /** Rewind the part of @p c's last skip window ordering at or
     *  after the (time @p t, core @p pick) edge. */
    void rewindPastEdge(RunState &rs, CoreId c, TimePs t, CoreId pick);

    /** Spend one simulated tick (plus its elided cycles) of deadlock
     *  watchdog budget, resetting on retire-frontier progress. */
    void noteTickForWatchdog(RunState &rs, Cycles skipped);

    /** Assemble the ContestResult once rs.finished. */
    ContestResult collectResult(const RunState &rs);

    /** Build the trace-position indexes the window bound needs
     *  (first syscall / n-th store at or after a position). */
    void buildWindowIndexes();

    std::vector<CoreConfig> configs;
    TracePtr trace;
    ContestConfig cfg;

    std::vector<std::unique_ptr<OooCore>> cores;
    std::vector<std::unique_ptr<CoreContestUnit>> units;
    std::unique_ptr<SyncStoreQueue> storeQ;
    std::unique_ptr<ExceptionCoordinator> excCoord;
    ShadowAccessLog shadowLog_;

    /** @name Lead tracking */
    /** @{ */
    InstSeq frontier{};
    CoreId lastLeader = 0;
    std::uint64_t leadChanges = 0;
    std::vector<std::uint64_t> leadCounts;
    /** @} */

    /** @name Asynchronous interrupts (Section 4.3) */
    /** @{ */
    /** Terminate-and-refork all cores at the designated core's
     *  position at global time @p now. */
    void serviceInterrupt(TimePs now, TickCalendar &calendar);
    /** Stores preceding each stream position (prefix counts). */
    std::vector<std::uint32_t> storePrefix;
    std::uint64_t interrupts = 0;
    /** @} */

    /** Parks observed so far; run() compares against its own count
     *  to detect a park that happened inside the current tick (the
     *  parked core's in-flight skip window must be rewound). */
    std::uint64_t parkEvents = 0;

    /** @name Windowed-execution trace indexes (lazily built) */
    /** @{ */
    /** Stream positions of syscall instructions, ascending. */
    std::vector<InstSeq> syscallSeqs;
    /** Stream positions of store instructions, ascending. */
    std::vector<InstSeq> storeSeqs;
    bool windowIndexesBuilt = false;
    /** @} */
};

/**
 * Convenience: run one benchmark trace alone on one core type
 * (no contesting) and return its IPT result.
 */
struct SingleRunResult
{
    TimePs timePs{};
    double ipt = 0.0;
    CoreStats stats;
    EnergyBreakdown energy;
};

/** Execute the trace on a single core of the given configuration. */
SingleRunResult runSingle(const CoreConfig &config, TracePtr trace);

/**
 * The cache-activity counters a finished core contributes to its
 * energy estimate. Contested runs add the GRB broadcast and
 * injection counts on top.
 */
ActivityCounts baseActivity(const OooCore &core);

} // namespace contest

#endif // CONTEST_CONTEST_SYSTEM_HH
