/**
 * @file
 * An architectural contesting multi-core system (paper Figure 2):
 * N cores concurrently executing the same dynamic instruction
 * stream, cross-connected by global result buses, backed by a
 * synchronizing store queue at the shared level and a rendezvous
 * exception coordinator, all stepped time-synchronously on a global
 * picosecond timeline.
 */

#ifndef CONTEST_CONTEST_SYSTEM_HH
#define CONTEST_CONTEST_SYSTEM_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "contest/calendar.hh"
#include "contest/config.hh"
#include "contest/exception.hh"
#include "contest/shadow_log.hh"
#include "contest/unit.hh"
#include "contest/window_stats.hh"
#include "core/ooo_core.hh"
#include "core/stats.hh"
#include "mem/sync_store_queue.hh"
#include "power/energy.hh"
#include "trace/trace.hh"

namespace contest
{

/** Outcome of one contested execution. */
struct ContestResult
{
    /** Global time when the first core retired the whole trace. */
    TimePs timePs{};
    /** Instructions retired per nanosecond (the paper's IPT). */
    double ipt = 0.0;
    /** Per-core pipeline statistics. */
    std::vector<CoreStats> coreStats;
    /** Per-core contesting-unit statistics. */
    std::vector<UnitStats> unitStats;
    /**
     * Fraction of instructions each core retired first — how
     * actively each core led the contest.
     */
    std::vector<double> leadFraction;
    /** Number of times the leading core changed. */
    std::uint64_t leadChanges = 0;
    /** Stores merged to the shared level. */
    StoreSeq mergedStores{};
    /** Exceptions handled by the rendezvous handler. */
    std::uint64_t exceptionsHandled = 0;
    /** Asynchronous interrupts serviced (terminate-and-refork). */
    std::uint64_t interruptsHandled = 0;
    /** Per-core energy estimate for the run. */
    std::vector<EnergyBreakdown> energy;

    /** Total energy over all cores, in nanojoules. */
    double
    totalEnergyNj() const
    {
        double sum = 0.0;
        for (const auto &e : energy)
            sum += e.totalNj();
        return sum;
    }
};

/** N-way architectural contesting system. */
class ContestSystem
{
  public:
    /**
     * @param core_configs one configuration per contesting core
     * @param trace_ptr the shared dynamic instruction stream
     * @param contest_config contesting machinery configuration
     */
    ContestSystem(std::vector<CoreConfig> core_configs,
                  TracePtr trace_ptr,
                  const ContestConfig &contest_config = {});

    ~ContestSystem();

    ContestSystem(const ContestSystem &) = delete;
    ContestSystem &operator=(const ContestSystem &) = delete;

    /**
     * Run the contest to completion: execution ends when the first
     * core retires the final instruction. Statically mismatched
     * peak rates (Section 4.1.4) are reported through warn(); the
     * dynamic saturation detector parks offenders either way.
     *
     * @param contest_jobs worker-thread budget for intra-simulation
     *        parallelism: 1 runs the classic sequential event loop;
     *        >1 shards provably-inert windows of the timeline across
     *        up to that many threads (bit-identical results — the
     *        sequential loop is the validation oracle); 0 (default)
     *        reads CONTEST_CONTEST_JOBS.
     */
    ContestResult run(unsigned contest_jobs = 0);

    /** Access a core (valid after construction). */
    const OooCore &core(CoreId id) const { return *cores.at(id); }

    /** Access a core's contesting unit (valid after construction). */
    CoreContestUnit &unit(CoreId id) { return *units.at(id); }

    /** @name Services used by the per-core units */
    /** @{ */
    /** Route a retired result from @p from to every other core. */
    void broadcast(CoreId from, InstSeq seq, TimePs now);
    /** A unit parked itself as a saturated lagger. */
    void corePark(CoreId core, TimePs now);
    /** The shared synchronizing store queue. */
    SyncStoreQueue &storeQueue() { return *storeQ; }
    /** The exception coordinator. */
    ExceptionCoordinator &exceptions() { return *excCoord; }
    /** First core to retire each instruction (lead tracking). */
    void noteRetire(CoreId core, InstSeq seq);
    /** The window-phase shadow access log (hooks are no-ops unless
     *  the build defines CONTEST_CHECK_WINDOWS; DESIGN.md §12). */
    ShadowAccessLog &shadowLog() { return shadowLog_; }
    /** @} */

    /**
     * Window-scheduling counters and wall-time split of the latest
     * run() (DESIGN.md §14). All-zero (inactive) when the run never
     * took the windowed path. The counter block is a deterministic
     * function of the simulated timeline — identical across worker
     * counts — while the wall-time fields reflect this machine.
     */
    const WindowStats &windowStats() const { return winStats_; }

    /**
     * Test hook: account heap allocations per steady-state window.
     * @p counter (typically incremented by a test's operator-new
     * override) is sampled (relaxed) around each committed window
     * after the first @p warmup_windows windows; the deltas land in
     * WindowStats::steadyAllocs / steadyWindows. Pass nullptr to
     * disarm.
     */
    void
    setAllocProbe(const std::atomic<std::uint64_t> *counter,
                  std::uint64_t warmup_windows)
    {
        allocProbe_ = counter;
        allocProbeWarmup_ = warmup_windows;
    }

  private:
    /**
     * Mutable state of one run(): the event calendar, the eager-skip
     * records, finish/interrupt/watchdog bookkeeping. Factored out
     * of run() so the sequential oracle step and the windowed
     * parallel scheduler advance the same state.
     */
    struct RunState
    {
        explicit RunState(std::size_t n) : calendar(n), skipRec(n) {}

        TickCalendar calendar;

        /** A skipping core's latest eagerly-elided window (see
         *  rewindPastEdge). */
        struct SkipRecord
        {
            TimePs tickedAt{};
            Cycles scheduled{};
        };
        std::vector<SkipRecord> skipRec;

        bool noSkip = false;
        std::uint64_t parksSeen = 0;
        TimePs nextInterrupt{};

        TimePs finishTime{};
        CoreId finisher = 0;
        bool finished = false;

        /** Deadlock watchdog (simulated ticks since the retire
         *  frontier last advanced). */
        InstSeq lastFrontier{};
        std::uint64_t stuckTicks = 0;

        /** @name Windowed-scheduler state (used by runWindowed only;
         *  DESIGN.md §14) */
        /** @{ */

        /** Adaptive per-window tick cap: doubles after each cleanly
         *  committed window up to ContestConfig::maxWindowTicks. */
        std::uint64_t capTicks = 0;
        /** Current hysteresis burst length (sequential steps taken
         *  after a degenerate horizon before the next attempt). */
        std::uint64_t burstLen = 0;

        /** Persistent window scratch, reused across windows so the
         *  hot loop constructs no vectors. */
        std::vector<CoreId> lanes;
        std::vector<TimePs> laneEdges;
        /** Commit-phase merge cursor over one lane's tick log. The
         *  packed time array is captured as a raw pointer so the
         *  k-way merge's inner scan is a single indexed load, no
         *  accessor calls. */
        struct MergeLane
        {
            const TimePs *at = nullptr; //!< lane's tick-time array
            std::uint32_t count = 0;    //!< ticks in the lane's log
            std::uint32_t tick = 0;     //!< next unmerged tick
            std::uint32_t ev = 0;       //!< next unreplayed event
            CoreContestUnit *unit = nullptr;
            CoreId core = 0;
        };
        std::vector<MergeLane> merge;

        /**
         * Signature-validated horizon term cache. Each cached entry
         * stores the *tick-count* bounds (k values, uncapped) of one
         * core or ordered pair together with a signature of every
         * input they depend on; windowHorizon recomputes a term only
         * when its signature changed and applies the calendar edges
         * and the adaptive cap at use time, so a core that merely
         * advanced its clock (skipped idle cycles without retiring
         * or touching the store queue) reuses its terms verbatim.
         * Signatures capture refork and park effects too (retired
         * position, fetch position, hook-argument floor, FIFO depth,
         * store-queue counters all change), so there is no explicit
         * invalidation path to get wrong.
         */
        struct SelfTerms
        {
            bool valid = false;
            /** @name Signature */
            /** @{ */
            std::uint64_t r0 = 0;        //!< retired position
            std::uint64_t performed = 0; //!< stores performed by core
            std::uint64_t merged = 0;    //!< stores merged (global)
            /** @} */
            /** Uncapped min of the trace-end / syscall / store-queue
             *  tick bounds. */
            std::uint64_t k = 0;
            /** Monotone cursors into syscallSeqs / storeSeqs (first
             *  entry at or after r0); re-seeded by binary search
             *  only when r0 moved backwards (refork). */
            std::size_t syCur = 0;
            std::size_t stCur = 0;
        };
        struct PairTerms
        {
            bool valid = false;
            /** @name Signature (c = sender, d = receiver) */
            /** @{ */
            std::uint64_t r0 = 0;    //!< sender retired position
            std::uint64_t fetch = 0; //!< receiver fetch position
            std::uint64_t floor = 0; //!< receiver hook-arg floor
            std::size_t depth = 0;   //!< receiver fifoDepth(sender)
            /** @} */
            std::uint64_t kReach = 0; //!< receiver ticks (uncapped)
            std::uint64_t kLate = 0;  //!< sender ticks (uncapped)
            std::uint64_t kSlack = 0; //!< sender ticks (uncapped)
        };
        std::vector<SelfTerms> selfTerms;
        /** Ordered pairs, indexed sender * n + receiver. */
        std::vector<PairTerms> pairTerms;
        /** @} */
    };

    /** One step of the sequential event loop: service a due
     *  interrupt or tick the earliest core, then do the park /
     *  finish / watchdog bookkeeping. The validation oracle for the
     *  windowed scheduler. */
    void seqStep(RunState &rs);

    /** Drive @p rs to completion with up to @p jobs-way windowed
     *  parallelism, falling back to seqStep for degenerate spans. */
    void runWindowed(RunState &rs, unsigned jobs);

    /**
     * Upper bound W1 of a provably-inert window starting at the
     * calendar's minimum: below W1 no core can finish, park, reach
     * an exception or interrupt edge, stall on the store queue, or
     * observe another core's in-window retirement other than as a
     * deferred (late, discardable) result. W1 <= the minimum edge
     * means no window exists (take a sequential step instead).
     * Non-const: maintains the RunState's horizon term cache and the
     * recompute/reuse counters.
     */
    TimePs windowHorizon(RunState &rs);

    /** Outcome of one executeWindow attempt. */
    enum class WindowAttempt
    {
        Ran,        //!< a window executed and committed
        Degenerate, //!< horizon proved no inert span exists
        SeqOnly,    //!< inherently sequential step (due interrupt,
                    //!< empty calendar) — no horizon was computed
    };

    /** Run one window if windowHorizon allows: advance every core
     *  with an edge below W1 on the worker group, then commit. */
    WindowAttempt executeWindow(RunState &rs,
                                ContestWorkerGroup &group);

    /** Replay the window's deferred events in (time, core-id) order
     *  — the sequential tick order — and advance the calendar.
     *  Reads the lanes/edges from rs's persistent scratch. */
    void commitWindow(RunState &rs);

    /** Rewind the part of @p c's last skip window ordering at or
     *  after the (time @p t, core @p pick) edge. */
    void rewindPastEdge(RunState &rs, CoreId c, TimePs t, CoreId pick);

    /** Spend one simulated tick (plus its elided cycles) of deadlock
     *  watchdog budget, resetting on retire-frontier progress. */
    void noteTickForWatchdog(RunState &rs, Cycles skipped);

    /** Assemble the ContestResult once rs.finished. */
    ContestResult collectResult(const RunState &rs);

    /** Build the trace-position indexes the window bound needs
     *  (first syscall / n-th store at or after a position). */
    void buildWindowIndexes();

    std::vector<CoreConfig> configs;
    TracePtr trace;
    ContestConfig cfg;

    std::vector<std::unique_ptr<OooCore>> cores;
    std::vector<std::unique_ptr<CoreContestUnit>> units;
    std::unique_ptr<SyncStoreQueue> storeQ;
    std::unique_ptr<ExceptionCoordinator> excCoord;
    ShadowAccessLog shadowLog_;

    /** @name Lead tracking */
    /** @{ */
    InstSeq frontier{};
    CoreId lastLeader = 0;
    std::uint64_t leadChanges = 0;
    std::vector<std::uint64_t> leadCounts;
    /** @} */

    /** @name Asynchronous interrupts (Section 4.3) */
    /** @{ */
    /** Terminate-and-refork all cores at the designated core's
     *  position at global time @p now. */
    void serviceInterrupt(TimePs now, TickCalendar &calendar);
    /** Stores preceding each stream position (prefix counts). */
    std::vector<std::uint32_t> storePrefix;
    std::uint64_t interrupts = 0;
    /** @} */

    /** Parks observed so far; run() compares against its own count
     *  to detect a park that happened inside the current tick (the
     *  parked core's in-flight skip window must be rewound). */
    std::uint64_t parkEvents = 0;

    /** @name Windowed-scheduling telemetry (reset by each run()) */
    /** @{ */
    WindowStats winStats_;
    /** Armed by setAllocProbe(): sampled around each committed
     *  window once winStats_.windows >= allocProbeWarmup_. */
    const std::atomic<std::uint64_t> *allocProbe_ = nullptr;
    std::uint64_t allocProbeWarmup_ = 0;
    /** @} */

    /** @name Windowed-execution trace indexes (lazily built) */
    /** @{ */
    /** Stream positions of syscall instructions, ascending. */
    std::vector<InstSeq> syscallSeqs;
    /** Stream positions of store instructions, ascending. */
    std::vector<InstSeq> storeSeqs;
    bool windowIndexesBuilt = false;
    /** @} */
};

/**
 * Convenience: run one benchmark trace alone on one core type
 * (no contesting) and return its IPT result.
 */
struct SingleRunResult
{
    TimePs timePs{};
    double ipt = 0.0;
    CoreStats stats;
    EnergyBreakdown energy;
};

/** Execute the trace on a single core of the given configuration. */
SingleRunResult runSingle(const CoreConfig &config, TracePtr trace);

/**
 * The cache-activity counters a finished core contributes to its
 * energy estimate. Contested runs add the GRB broadcast and
 * injection counts on top.
 */
ActivityCounts baseActivity(const OooCore &core);

} // namespace contest

#endif // CONTEST_CONTEST_SYSTEM_HH
