/**
 * @file
 * An architectural contesting multi-core system (paper Figure 2):
 * N cores concurrently executing the same dynamic instruction
 * stream, cross-connected by global result buses, backed by a
 * synchronizing store queue at the shared level and a rendezvous
 * exception coordinator, all stepped time-synchronously on a global
 * picosecond timeline.
 */

#ifndef CONTEST_CONTEST_SYSTEM_HH
#define CONTEST_CONTEST_SYSTEM_HH

#include <memory>
#include <vector>

#include "contest/calendar.hh"
#include "contest/config.hh"
#include "contest/exception.hh"
#include "contest/unit.hh"
#include "core/ooo_core.hh"
#include "core/stats.hh"
#include "mem/sync_store_queue.hh"
#include "power/energy.hh"
#include "trace/trace.hh"

namespace contest
{

/** Outcome of one contested execution. */
struct ContestResult
{
    /** Global time when the first core retired the whole trace. */
    TimePs timePs{};
    /** Instructions retired per nanosecond (the paper's IPT). */
    double ipt = 0.0;
    /** Per-core pipeline statistics. */
    std::vector<CoreStats> coreStats;
    /** Per-core contesting-unit statistics. */
    std::vector<UnitStats> unitStats;
    /**
     * Fraction of instructions each core retired first — how
     * actively each core led the contest.
     */
    std::vector<double> leadFraction;
    /** Number of times the leading core changed. */
    std::uint64_t leadChanges = 0;
    /** Stores merged to the shared level. */
    StoreSeq mergedStores{};
    /** Exceptions handled by the rendezvous handler. */
    std::uint64_t exceptionsHandled = 0;
    /** Asynchronous interrupts serviced (terminate-and-refork). */
    std::uint64_t interruptsHandled = 0;
    /** Per-core energy estimate for the run. */
    std::vector<EnergyBreakdown> energy;

    /** Total energy over all cores, in nanojoules. */
    double
    totalEnergyNj() const
    {
        double sum = 0.0;
        for (const auto &e : energy)
            sum += e.totalNj();
        return sum;
    }
};

/** N-way architectural contesting system. */
class ContestSystem
{
  public:
    /**
     * @param core_configs one configuration per contesting core
     * @param trace_ptr the shared dynamic instruction stream
     * @param contest_config contesting machinery configuration
     */
    ContestSystem(std::vector<CoreConfig> core_configs,
                  TracePtr trace_ptr,
                  const ContestConfig &contest_config = {});

    ~ContestSystem();

    ContestSystem(const ContestSystem &) = delete;
    ContestSystem &operator=(const ContestSystem &) = delete;

    /**
     * Run the contest to completion: execution ends when the first
     * core retires the final instruction. Statically mismatched
     * peak rates (Section 4.1.4) are reported through warn(); the
     * dynamic saturation detector parks offenders either way.
     */
    ContestResult run();

    /** Access a core (valid after construction). */
    const OooCore &core(CoreId id) const { return *cores.at(id); }

    /** Access a core's contesting unit (valid after construction). */
    CoreContestUnit &unit(CoreId id) { return *units.at(id); }

    /** @name Services used by the per-core units */
    /** @{ */
    /** Route a retired result from @p from to every other core. */
    void broadcast(CoreId from, InstSeq seq, TimePs now);
    /** A unit parked itself as a saturated lagger. */
    void corePark(CoreId core, TimePs now);
    /** The shared synchronizing store queue. */
    SyncStoreQueue &storeQueue() { return *storeQ; }
    /** The exception coordinator. */
    ExceptionCoordinator &exceptions() { return *excCoord; }
    /** First core to retire each instruction (lead tracking). */
    void noteRetire(CoreId core, InstSeq seq);
    /** @} */

  private:
    std::vector<CoreConfig> configs;
    TracePtr trace;
    ContestConfig cfg;

    std::vector<std::unique_ptr<OooCore>> cores;
    std::vector<std::unique_ptr<CoreContestUnit>> units;
    std::unique_ptr<SyncStoreQueue> storeQ;
    std::unique_ptr<ExceptionCoordinator> excCoord;

    /** @name Lead tracking */
    /** @{ */
    InstSeq frontier{};
    CoreId lastLeader = 0;
    std::uint64_t leadChanges = 0;
    std::vector<std::uint64_t> leadCounts;
    /** @} */

    /** @name Asynchronous interrupts (Section 4.3) */
    /** @{ */
    /** Terminate-and-refork all cores at the designated core's
     *  position at global time @p now. */
    void serviceInterrupt(TimePs now, TickCalendar &calendar);
    /** Stores preceding each stream position (prefix counts). */
    std::vector<std::uint32_t> storePrefix;
    std::uint64_t interrupts = 0;
    /** @} */

    /** Parks observed so far; run() compares against its own count
     *  to detect a park that happened inside the current tick (the
     *  parked core's in-flight skip window must be rewound). */
    std::uint64_t parkEvents = 0;
};

/**
 * Convenience: run one benchmark trace alone on one core type
 * (no contesting) and return its IPT result.
 */
struct SingleRunResult
{
    TimePs timePs{};
    double ipt = 0.0;
    CoreStats stats;
    EnergyBreakdown energy;
};

/** Execute the trace on a single core of the given configuration. */
SingleRunResult runSingle(const CoreConfig &config, TracePtr trace);

/**
 * The cache-activity counters a finished core contributes to its
 * energy estimate. Contested runs add the GRB broadcast and
 * injection counts on top.
 */
ActivityCounts baseActivity(const OooCore &core);

} // namespace contest

#endif // CONTEST_CONTEST_SYSTEM_HH
