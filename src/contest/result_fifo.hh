/**
 * @file
 * Result FIFO with pop-counter semantics (paper Section 4.1.2).
 *
 * A core receives the retired-instruction results of every other
 * core through per-source result FIFOs. Because a source retires
 * the shared dynamic instruction stream in order, the FIFO's content
 * is fully described by the stream position of its head entry (the
 * pop counter) plus the arrival time of each buffered entry. An
 * entry is "in the FIFO" once its GRB propagation delay has elapsed;
 * entries pushed but not yet arrived model results in flight on the
 * bus.
 */

#ifndef CONTEST_CONTEST_RESULT_FIFO_HH
#define CONTEST_CONTEST_RESULT_FIFO_HH

#include <algorithm>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "common/soa.hh"
#include "common/types.hh"

namespace contest
{

/**
 * One incoming result FIFO (one per source core).
 *
 * The buffer is a flat power-of-two ring of arrival times rather
 * than a node-based deque: the core polls the head every cycle it
 * is stalled on a branch, so the head read must be one contiguous
 * load, and pushes/pops are index arithmetic.
 */
class ResultFifo
{
  public:
    /** @param capacity maximum buffered entries (lagging window) */
    explicit ResultFifo(std::size_t capacity)
        : cap(capacity), ringMask(nextPow2(capacity) - 1),
          arrivals(nextPow2(capacity))
    {
        fatal_if(capacity == 0, "ResultFifo capacity must be non-zero");
    }

    /**
     * The source core retired instruction @p seq; its result arrives
     * here at @p arrival. Results are pushed in retirement order.
     *
     * @return false if the FIFO overflowed (the receiving core is a
     *         saturated lagger); the entry is not recorded.
     */
    bool
    // Audited window-safe leaf: only ContestSystem's sequential
    // loop and window-commit phase push into a fifo (in-window
    // delivery panics in receiveResult first); the shadow checker
    // re-verifies this at runtime under CONTEST_CHECK_WINDOWS.
    CONTEST_WINDOW_SAFE
    push(InstSeq seq, TimePs arrival)
    {
        panic_if(seq != headSeq_ + count,
                 "ResultFifo: out-of-order push (%llu, expected %llu)",
                 static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(headSeq_ + count));
        if (count >= cap)
            return false;
        arrivals[(head + count) & ringMask] = arrival;
        ++count;
        return true;
    }

    /** Stream position of the head entry — the pop counter. */
    InstSeq headSeq() const { return headSeq_; }

    /** Number of buffered (including in-flight) entries. */
    std::size_t size() const { return count; }

    /** Is the FIFO empty of pushed entries? */
    bool empty() const { return count == 0; }

    /**
     * Has the head entry physically arrived by time @p now? An
     * empty FIFO has no arrived head.
     */
    bool
    headArrived(TimePs now) const
    {
        return count != 0 && arrivals[head] <= now;
    }

    /** Arrival time of the head entry, if one was pushed. */
    std::optional<TimePs>
    headArrival() const
    {
        if (count == 0)
            return std::nullopt;
        return arrivals[head];
    }

    /** Pop the head entry, advancing the pop counter. */
    void
    pop()
    {
        panic_if(count == 0, "ResultFifo: pop from empty FIFO");
        head = (head + 1) & ringMask;
        --count;
        ++headSeq_;
    }

    /**
     * Discard every entry strictly older than @p seq — late results
     * a non-trailing core pops and drops (Scenario #1).
     *
     * @return number of discarded entries
     */
    std::size_t
    discardBelow(InstSeq seq)
    {
        // Buffered entries carry the contiguous stream positions
        // headSeq_ .. headSeq_ + count - 1, so the discard count is
        // arithmetic, no per-entry walk.
        if (seq <= headSeq_)
            return 0;
        const std::size_t n = std::min<std::size_t>(
            count, (seq - headSeq_).count());
        head = (head + n) & ringMask;
        count -= n;
        headSeq_ += n;
        return n;
    }

    /**
     * Drop all buffered entries (core parked), advancing the pop
     * counter past them. The source keeps retiring in order, so the
     * next push carries seq = headSeq_ + old size(); leaving the pop
     * counter at the old head would make that push look out of order
     * and panic. Equivalent to seeking to the first un-pushed seq.
     */
    void
    clear()
    {
        seekTo(headSeq_ + count);
    }

    /**
     * Drop all buffered entries and move the pop counter to @p seq:
     * used when the whole system reforks at a common stream position
     * after an asynchronous interrupt (Section 4.3) — every source
     * resumes retiring from @p seq, so contiguity is re-established.
     */
    void
    seekTo(InstSeq seq)
    {
        head = 0;
        count = 0;
        headSeq_ = seq;
    }

  private:
    std::size_t cap;
    std::size_t ringMask;
    std::vector<TimePs> arrivals;
    std::size_t head = 0;
    std::size_t count = 0;
    InstSeq headSeq_{};
};

} // namespace contest

#endif // CONTEST_CONTEST_RESULT_FIFO_HH
