/**
 * @file
 * Redundant-thread-aware parallelized exception handling (paper
 * Section 4.3).
 *
 * A core that reaches a synchronous exception calls the handler,
 * which increments a semaphore; until every participating core has
 * reached the exception the caller sleeps. Once the last core
 * arrives, all handlers run in coordination and every core resumes
 * after the handler latency. Parked (saturated-lagger) cores no
 * longer participate.
 */

#ifndef CONTEST_CONTEST_EXCEPTION_HH
#define CONTEST_CONTEST_EXCEPTION_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** Semaphore-style rendezvous for synchronous exceptions. */
class ExceptionCoordinator
{
  public:
    /**
     * @param num_cores participating cores
     * @param handler_ps handler latency after the rendezvous
     */
    ExceptionCoordinator(unsigned num_cores, TimePs handler_ps);

    /**
     * Core @p core reached the exception at stream position @p seq
     * at time @p now (idempotent per core and position).
     *
     * @return the time at which this core may resume, or nullopt
     *         while other participating cores have not yet arrived
     */
    std::optional<TimePs> arrive(CoreId core, InstSeq seq, TimePs now);

    /** Core @p core stops participating (parked or finished) at
     *  time @p now. */
    void dropCore(CoreId core, TimePs now);

    /** Number of exceptions fully handled so far. */
    std::uint64_t handled() const { return numHandled; }

  private:
    struct Rendezvous
    {
        std::vector<bool> arrived;
        unsigned count = 0;
        std::optional<TimePs> resumeAt;
    };

    bool complete(const Rendezvous &r) const;

    TimePs handlerPs;
    std::vector<bool> active;
    unsigned numActive;
    std::map<InstSeq, Rendezvous> pending;
    std::uint64_t numHandled = 0;
};

} // namespace contest

#endif // CONTEST_CONTEST_EXCEPTION_HH
