#include "contest/system.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace contest
{

ContestSystem::ContestSystem(std::vector<CoreConfig> core_configs,
                             TracePtr trace_ptr,
                             const ContestConfig &contest_config)
    : configs(std::move(core_configs)), trace(std::move(trace_ptr)),
      cfg(contest_config)
{
    fatal_if(configs.empty(), "ContestSystem needs at least one core");
    fatal_if(!trace || trace->empty(),
             "ContestSystem needs a non-empty trace");

    const auto n = static_cast<unsigned>(configs.size());
    storeQ = std::make_unique<SyncStoreQueue>(n,
                                              cfg.storeQueueCapacity);
    excCoord = std::make_unique<ExceptionCoordinator>(
        n, cfg.syscallHandlerPs);
    leadCounts.assign(n, 0);

    for (CoreId i = 0; i < n; ++i)
        units.push_back(
            std::make_unique<CoreContestUnit>(i, cfg, this, n));
    for (CoreId i = 0; i < n; ++i) {
        cores.push_back(
            std::make_unique<OooCore>(configs[i], trace, i));
        cores[i]->attachContest(units[i].get(), cfg.injectionStyle);
        // Section 4.2: private levels are write-through in
        // contesting mode.
        cores[i]->memory().setWriteThrough(true);
        units[i]->setCore(cores[i].get());
    }

    fatal_if(cfg.interruptPeriodPs > TimePs{}
                 && cfg.interruptPeriodPs <= cfg.interruptHandlerPs,
             "interrupt period (%llu ps) must exceed the handler "
             "time (%llu ps) or the system never executes",
             static_cast<unsigned long long>(cfg.interruptPeriodPs),
             static_cast<unsigned long long>(
                 cfg.interruptHandlerPs));
    if (cfg.interruptPeriodPs > TimePs{}) {
        // Prefix store counts let a refork reposition the
        // synchronizing store queue in O(1).
        storePrefix.reserve(trace->size() + 1);
        std::uint32_t count = 0;
        storePrefix.push_back(0);
        for (std::size_t i = 0; i < trace->size(); ++i) {
            if ((*trace)[i].op == OpClass::Store)
                ++count;
            storePrefix.push_back(count);
        }
    }

    // Section 4.1.4 static condition: the peak retirement rate of
    // any core should be sustainable by every other core.
    double max_peak = 0.0;
    for (const auto &c : configs)
        max_peak = std::max(max_peak, c.peakIps());
    for (const auto &c : configs) {
        if (c.peakIps() < max_peak * 0.5) {
            inform("core type '%s' (peak %.1f inst/ns) may be a "
                   "saturated lagger (system peak %.1f inst/ns)",
                   c.name.c_str(), c.peakIps(), max_peak);
        }
    }
}

ContestSystem::~ContestSystem() = default;

void
ContestSystem::broadcast(CoreId from, InstSeq seq, TimePs now)
{
    for (CoreId c = 0; c < units.size(); ++c) {
        if (c == from || units[c]->parked())
            continue;
        units[c]->receiveResult(from, seq, now + cfg.grbLatencyPs);
    }
}

void
ContestSystem::corePark(CoreId core, TimePs now)
{
    storeQ->dropCore(core);
    excCoord->dropCore(core, now);
    inform("core %u ('%s') parked as a saturated lagger at %.1f ns",
           core, configs[core].name.c_str(),
           static_cast<double>(now) / psPerNs);
}

void
ContestSystem::noteRetire(CoreId core, InstSeq seq)
{
    if (seq != frontier)
        return; // a lagger re-retiring an already-led instruction
    if (frontier > InstSeq{} && core != lastLeader)
        ++leadChanges;
    lastLeader = core;
    ++leadCounts[core];
    ++frontier;
}

void
ContestSystem::serviceInterrupt(TimePs now,
                                std::vector<TimePs> &next_tick)
{
    // The designated core (core 0) listens for external interrupts.
    // Stopping every redundant thread at the same point would need
    // elaborate handshaking, so the paper terminates the
    // non-designated threads, services the interrupt on the
    // designated core, and reforks everyone at its position.
    InstSeq refork_at = cores[0]->retired();
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (units[c]->parked())
            continue;
        cores[c]->reforkTo(refork_at);
        units[c]->reforkTo(refork_at);
        next_tick[c] = now + cfg.interruptHandlerPs;
    }
    storeQ->reforkAll(
        StoreSeq{storePrefix[static_cast<std::size_t>(refork_at.count())]});
    ++interrupts;
    inform("interrupt at %.1f ns: reforked all cores at "
           "instruction %llu",
           static_cast<double>(now) / psPerNs,
           static_cast<unsigned long long>(refork_at));
}

ContestResult
ContestSystem::run()
{
    const auto n = cores.size();
    constexpr TimePs never = TimePs::max();
    std::vector<TimePs> next_tick(n, TimePs{});

    TimePs finish_time{};
    CoreId finisher = 0;
    bool finished = false;
    TimePs nextInterruptPs = cfg.interruptPeriodPs;

    // Deadlock watchdog: global ticks since the retire frontier
    // last advanced.
    InstSeq last_frontier{};
    std::uint64_t stuck_ticks = 0;
    const std::uint64_t stuck_limit = cfg.deadlockStuckTicks;

    while (!finished) {
        // Pick the core with the earliest next clock edge; ties go
        // to the lower core id (the paper's round-robin handshake
        // order made the same choice deterministic).
        CoreId pick = 0;
        TimePs t = never;
        for (CoreId c = 0; c < n; ++c) {
            if (units[c]->parked())
                continue;
            if (next_tick[c] < t) {
                t = next_tick[c];
                pick = c;
            }
        }
        panic_if(t == never,
                 "contest deadlock: every core is parked");

        if (cfg.interruptPeriodPs > TimePs{} && t >= nextInterruptPs) {
            serviceInterrupt(nextInterruptPs, next_tick);
            nextInterruptPs += cfg.interruptPeriodPs;
            continue; // re-pick with the updated tick times
        }

        cores[pick]->tick(t);
        next_tick[pick] = t + cores[pick]->periodPs();

        if (cores[pick]->done()) {
            finished = true;
            finisher = pick;
            finish_time = t + cores[pick]->periodPs();
        }

        if (frontier != last_frontier) {
            last_frontier = frontier;
            stuck_ticks = 0;
        } else if (++stuck_ticks > stuck_limit) {
            panic("contest deadlock: no retirement in %llu ticks "
                  "(frontier %llu of %zu)",
                  static_cast<unsigned long long>(stuck_limit),
                  static_cast<unsigned long long>(frontier),
                  trace->size());
        }
    }

    ContestResult result;
    result.timePs = finish_time;
    result.ipt = instPerNs(trace->endSeq(), finish_time);
    for (CoreId c = 0; c < n; ++c) {
        result.coreStats.push_back(cores[c]->stats());
        result.unitStats.push_back(units[c]->stats());
        result.leadFraction.push_back(
            static_cast<double>(leadCounts[c])
            / static_cast<double>(trace->size()));

        // A parked core stops burning static power when it leaves
        // contesting mode.
        TimePs powered = units[c]->stats().saturated
            ? units[c]->stats().parkedAt
            : finish_time;
        ActivityCounts activity = baseActivity(*cores[c]);
        activity.grbBroadcasts = units[c]->stats().broadcasts;
        activity.injections = cores[c]->stats().injected;
        result.energy.push_back(
            estimateEnergy(configs[c], cores[c]->stats(), activity,
                           powered));
    }
    result.leadChanges = leadChanges;
    result.mergedStores = storeQ->mergedCount();
    result.exceptionsHandled = excCoord->handled();
    result.interruptsHandled = interrupts;

    inform("contest finished: core %u ('%s') first at %.1f ns, "
           "IPT %.3f, %llu lead changes",
           finisher, configs[finisher].name.c_str(),
           static_cast<double>(finish_time) / psPerNs, result.ipt,
           static_cast<unsigned long long>(leadChanges));
    return result;
}

SingleRunResult
runSingle(const CoreConfig &config, TracePtr trace)
{
    fatal_if(!trace || trace->empty(),
             "runSingle needs a non-empty trace");
    OooCore core(config, trace);
    TimePs t{};
    while (!core.done()) {
        core.tick(t);
        t += core.periodPs();
    }
    SingleRunResult r;
    r.timePs = t;
    r.ipt = instPerNs(trace->endSeq(), t);
    r.stats = core.stats();
    r.energy = estimateEnergy(config, core.stats(), baseActivity(core),
                              t);
    return r;
}

ActivityCounts
baseActivity(const OooCore &core)
{
    ActivityCounts activity;
    activity.l1Accesses = core.memory().l1().accesses();
    activity.l1Misses = core.memory().l1().misses();
    activity.l2Accesses = core.memory().l2().accesses();
    activity.l2Misses = core.memory().l2().misses();
    return activity;
}

} // namespace contest
