#include "contest/system.hh"

#include <algorithm>
#include <limits>

#include "common/env.hh"
#include "common/log.hh"

namespace contest
{

ContestSystem::ContestSystem(std::vector<CoreConfig> core_configs,
                             TracePtr trace_ptr,
                             const ContestConfig &contest_config)
    : configs(std::move(core_configs)), trace(std::move(trace_ptr)),
      cfg(contest_config)
{
    fatal_if(configs.empty(), "ContestSystem needs at least one core");
    fatal_if(!trace || trace->empty(),
             "ContestSystem needs a non-empty trace");

    const auto n = static_cast<unsigned>(configs.size());
    storeQ = std::make_unique<SyncStoreQueue>(n,
                                              cfg.storeQueueCapacity);
    excCoord = std::make_unique<ExceptionCoordinator>(
        n, cfg.syscallHandlerPs);
    leadCounts.assign(n, 0);

    for (CoreId i = 0; i < n; ++i)
        units.push_back(
            std::make_unique<CoreContestUnit>(i, cfg, this, n));
    for (CoreId i = 0; i < n; ++i) {
        cores.push_back(
            std::make_unique<OooCore>(configs[i], trace, i));
        cores[i]->attachContest(units[i].get(), cfg.injectionStyle);
        // Section 4.2: private levels are write-through in
        // contesting mode.
        cores[i]->memory().setWriteThrough(true);
        units[i]->setCore(cores[i].get());
    }

    fatal_if(cfg.interruptPeriodPs > TimePs{}
                 && cfg.interruptPeriodPs <= cfg.interruptHandlerPs,
             "interrupt period (%llu ps) must exceed the handler "
             "time (%llu ps) or the system never executes",
             static_cast<unsigned long long>(cfg.interruptPeriodPs),
             static_cast<unsigned long long>(
                 cfg.interruptHandlerPs));
    if (cfg.interruptPeriodPs > TimePs{}) {
        // Prefix store counts let a refork reposition the
        // synchronizing store queue in O(1).
        storePrefix.reserve(trace->size() + 1);
        std::uint32_t count = 0;
        storePrefix.push_back(0);
        for (std::size_t i = 0; i < trace->size(); ++i) {
            if ((*trace)[i].op == OpClass::Store)
                ++count;
            storePrefix.push_back(count);
        }
    }

    // Section 4.1.4 static condition: the peak retirement rate of
    // any core should be sustainable by every other core.
    double max_peak = 0.0;
    for (const auto &c : configs)
        max_peak = std::max(max_peak, c.peakIps());
    for (const auto &c : configs) {
        if (c.peakIps() < max_peak * 0.5) {
            inform("core type '%s' (peak %.1f inst/ns) may be a "
                   "saturated lagger (system peak %.1f inst/ns)",
                   c.name.c_str(), c.peakIps(), max_peak);
        }
    }
}

ContestSystem::~ContestSystem() = default;

void
ContestSystem::broadcast(CoreId from, InstSeq seq, TimePs now)
{
    for (CoreId c = 0; c < units.size(); ++c) {
        if (c == from || units[c]->parked())
            continue;
        CONTEST_SHADOW_RECORD(shadowLog_, c, FifoState, true,
                              "ContestSystem::broadcast");
        units[c]->receiveResult(from, seq, now + cfg.grbLatencyPs);
    }
}

void
ContestSystem::corePark(CoreId core, TimePs now)
{
    storeQ->dropCore(core);
    excCoord->dropCore(core, now);
    ++parkEvents;
    inform("core %u ('%s') parked as a saturated lagger at %.1f ns",
           core, configs[core].name.c_str(),
           static_cast<double>(now) / psPerNs);
}

void
ContestSystem::noteRetire(CoreId core, InstSeq seq)
{
    CONTEST_SHADOW_RECORD(shadowLog_, kShadowGlobalOwner,
                          LeadFrontier, true,
                          "ContestSystem::noteRetire");
    if (seq != frontier)
        return; // a lagger re-retiring an already-led instruction
    if (frontier > InstSeq{} && core != lastLeader)
        ++leadChanges;
    lastLeader = core;
    ++leadCounts[core];
    ++frontier;
}

void
ContestSystem::serviceInterrupt(TimePs now, TickCalendar &calendar)
{
    // The designated core (core 0) listens for external interrupts.
    // Stopping every redundant thread at the same point would need
    // elaborate handshaking, so the paper terminates the
    // non-designated threads, services the interrupt on the
    // designated core, and reforks everyone at its position.
    InstSeq refork_at = cores[0]->retired();
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (units[c]->parked())
            continue;
        cores[c]->reforkTo(refork_at);
        units[c]->reforkTo(refork_at);
        calendar.set(c, now + cfg.interruptHandlerPs);
    }
    storeQ->reforkAll(
        StoreSeq{storePrefix[static_cast<std::size_t>(refork_at.count())]});
    ++interrupts;
    inform("interrupt at %.1f ns: reforked all cores at "
           "instruction %llu",
           static_cast<double>(now) / psPerNs,
           static_cast<unsigned long long>(refork_at));
}

void
ContestSystem::rewindPastEdge(RunState &rs, CoreId c, TimePs t,
                              CoreId pick)
{
    // A skipping core's elided ticks happen "eagerly" when they are
    // scheduled; the ones that would have ordered at or after the
    // (time, id) edge (t, pick) have not really elapsed: elided tick
    // i sat at rec.tickedAt + i*period and really elapsed iff its
    // edge ordered before (t, pick).
    RunState::SkipRecord &rec = rs.skipRec[c];
    if (rec.scheduled == Cycles{})
        return;
    std::uint64_t step = cores[c]->periodPs().count();
    std::uint64_t d = (t - rec.tickedAt).count();
    std::uint64_t num_lt = d > 0 ? (d - 1) / step : 0;
    std::uint64_t num_eq =
        (c < pick && d > 0 && d % step == 0) ? 1 : 0;
    std::uint64_t executed = num_lt + num_eq;
    if (executed < rec.scheduled.count()) {
        cores[c]->rewindIdleTicks(rec.scheduled - Cycles{executed});
        rec.scheduled = Cycles{executed};
    }
}

void
ContestSystem::noteTickForWatchdog(RunState &rs, Cycles skipped)
{
    // Deadlock watchdog: simulated ticks (including fast-forwarded
    // ones) since the retire frontier last advanced, so skipping
    // can neither mask nor falsely trigger the panic.
    if (frontier != rs.lastFrontier) {
        rs.lastFrontier = frontier;
        // Elided ticks follow the retiring tick, so they open the
        // next stuck window.
        rs.stuckTicks = skipped.count();
    } else {
        rs.stuckTicks += 1 + skipped.count();
    }
    if (!rs.finished && rs.stuckTicks > cfg.deadlockStuckTicks)
        panic("contest deadlock: no retirement in %llu ticks "
              "(frontier %llu of %zu)",
              static_cast<unsigned long long>(cfg.deadlockStuckTicks),
              static_cast<unsigned long long>(frontier),
              trace->size());
}

void
ContestSystem::seqStep(RunState &rs)
{
    const auto n = static_cast<CoreId>(cores.size());
    panic_if(rs.calendar.empty(),
             "contest deadlock: every core is parked");
    TimePs t = rs.calendar.minTime();
    CoreId pick = rs.calendar.minCore();

    if (cfg.interruptPeriodPs > TimePs{} && t >= rs.nextInterrupt) {
        serviceInterrupt(rs.nextInterrupt, rs.calendar);
        rs.nextInterrupt += cfg.interruptPeriodPs;
        return; // re-pick with the updated tick times
    }

    cores[pick]->tick(t);

    Cycles skipped{};
    if (!rs.noSkip && !cores[pick]->done()) {
        Cycles max_skip = Cycles::max();
        if (cfg.interruptPeriodPs > TimePs{}) {
            // Every elided tick at t + i*period must precede
            // the next interrupt edge; the first edge at or
            // past it must be picked live so the service fires.
            TimePs gap = rs.nextInterrupt - t;
            max_skip = Cycles{
                (gap.count() - 1)
                / cores[pick]->periodPs().count()};
        }
        skipped = cores[pick]->skipIdleCycles(max_skip);
    }
    rs.skipRec[pick] = RunState::SkipRecord{t, skipped};
    rs.calendar.set(pick,
                    t + TimePs{cores[pick]->periodPs().count()
                               * (skipped.count() + 1)});

    if (cores[pick]->done()) {
        rs.finished = true;
        rs.finisher = pick;
        rs.finishTime = t + cores[pick]->periodPs();
    }

    if (parkEvents != rs.parksSeen) {
        // Someone parked during this tick (a broadcast from
        // `pick` overflowed their FIFO). Drop them from the
        // calendar and rewind any elided ticks that would have
        // ordered after this tick's (t, pick) edge.
        rs.parksSeen = parkEvents;
        for (CoreId c = 0; c < n; ++c) {
            if (!units[c]->parked() || !rs.calendar.contains(c))
                continue;
            rs.calendar.remove(c);
            rewindPastEdge(rs, c, t, pick);
        }
    }

    noteTickForWatchdog(rs, skipped);

    if (rs.finished) {
        // Per-cycle stepping stops every other core at its last
        // edge before (t, finisher); drop the losers' eagerly
        // elided ticks that would have ordered after it.
        for (CoreId c = 0; c < n; ++c)
            if (c != rs.finisher)
                rewindPastEdge(rs, c, t, rs.finisher);
    }
}

void
ContestSystem::buildWindowIndexes()
{
    if (windowIndexesBuilt)
        return;
    for (std::size_t i = 0; i < trace->size(); ++i) {
        const OpClass op = (*trace)[InstSeq{i}].op;
        if (op == OpClass::Syscall)
            syscallSeqs.push_back(InstSeq{i});
        else if (op == OpClass::Store)
            storeSeqs.push_back(InstSeq{i});
    }
    windowIndexesBuilt = true;
}

namespace
{

/** Most ticks a core retiring <= width instructions per tick can
 *  execute from retirement position @p r0 without its retirement
 *  (or any hook argument derived from it) reaching position @p s. */
std::uint64_t
stepsBelow(std::uint64_t s, std::uint64_t r0, std::uint64_t width)
{
    return s > r0 ? (s - r0 - 1) / width : 0;
}

} // namespace

TimePs
ContestSystem::windowHorizon(const RunState &rs) const
{
    const auto n = static_cast<CoreId>(cores.size());
    // Cap on any core's in-window ticks: bounds the per-lane tick
    // and event logs (and the bound arithmetic) regardless of how
    // inert the timeline is.
    constexpr std::uint64_t max_ticks = 4096;

    TimePs w1 = TimePs::max();
    // No in-window edge may reach the next interrupt: servicing
    // terminates-and-reforks every core, a cross-core effect only
    // the sequential path performs.
    if (cfg.interruptPeriodPs > TimePs{})
        w1 = std::min(w1, rs.nextInterrupt);

    for (CoreId c = 0; c < n; ++c) {
        if (!rs.calendar.contains(c))
            continue;
        const OooCore &core = *cores[c];
        const std::uint64_t edge = rs.calendar.timeOf(c).count();
        // Raw counts on purpose: the bound arithmetic mixes ps,
        // cycles and sequence numbers, guarded by comparisons.
        // contest-lint: allow(bare-u64-quantity)
        const std::uint64_t period = core.periodPs().count();
        const std::uint64_t width = core.config().width;
        const std::uint64_t r0 = core.retired().count();

        // Self bounds: the core must not finish the trace, reach a
        // syscall rendezvous, or meet the first store the queue
        // could refuse (its un-merged backlog measured now; merging
        // only ever frees more room, so this is conservative).
        std::uint64_t k = max_ticks;
        k = std::min(k, stepsBelow(trace->endSeq().count(), r0,
                                   width));
        auto sy = std::lower_bound(syscallSeqs.begin(),
                                   syscallSeqs.end(), InstSeq{r0});
        if (sy != syscallSeqs.end())
            k = std::min(k, stepsBelow(sy->count(), r0, width));
        if (!storeSeqs.empty()) {
            const auto idx0 = static_cast<std::size_t>(
                std::lower_bound(storeSeqs.begin(), storeSeqs.end(),
                                 InstSeq{r0})
                - storeSeqs.begin());
            const std::uint64_t backlog =
                storeQ->performedBy(c).count()
                - storeQ->mergedCount().count();
            const std::uint64_t allowance =
                cfg.storeQueueCapacity - backlog;
            if (idx0 + allowance < storeSeqs.size())
                k = std::min(k,
                             stepsBelow(
                                 storeSeqs[idx0 + allowance].count(),
                                 r0, width));
        }
        // Sender bound: this core's broadcasts must fit into every
        // live receiver's free FIFO slack even if the receiver never
        // pops, so no in-window push can overflow (= park anyone).
        for (CoreId d = 0; d < n; ++d) {
            if (d == c || !rs.calendar.contains(d))
                continue;
            const std::uint64_t slack =
                cfg.fifoCapacity - units[d]->fifoDepth(c);
            k = std::min(k, slack / width);
        }
        w1 = std::min(w1, TimePs{edge + period * k});

        // Ordered-pair bound, this core sending to receiver d: the
        // window is inert if EITHER the receiver's hook arguments
        // stay strictly below the sender's next retirement ("reach":
        // new results sit at the FIFO tail, invisible to pairing and
        // discarding) OR the sender's in-window retirements stay
        // strictly below the receiver's argument floor ("late":
        // every new result is a late, discardable one, replayed
        // exactly by the commit phase). Each candidate constrains
        // only its own core's ticks and is sound on its own, so the
        // pair contributes the larger of the two.
        for (CoreId d = 0; d < n; ++d) {
            if (d == c || !rs.calendar.contains(d))
                continue;
            const OooCore &recv = *cores[d];
            const std::uint64_t f_b = recv.nextFetchSeq().count();
            const std::uint64_t wid_b = recv.config().width;
            const std::uint64_t k_reach = std::min(
                max_ticks, r0 > f_b ? (r0 - f_b) / wid_b : 0);
            const std::uint64_t reach_bound =
                rs.calendar.timeOf(d).count()
                + recv.periodPs().count() * k_reach;
            const std::uint64_t floor_b =
                recv.hookArgFloor().count();
            const std::uint64_t k_late = std::min(
                max_ticks, floor_b > r0 ? (floor_b - r0) / width : 0);
            const std::uint64_t late_bound = edge + period * k_late;
            w1 = std::min(w1,
                          TimePs{std::max(reach_bound, late_bound)});
        }
    }
    return w1;
}

bool
ContestSystem::executeWindow(RunState &rs, ContestWorkerGroup &group)
{
    if (rs.calendar.empty())
        return false; // let seqStep raise the all-parked panic
    const TimePs t0 = rs.calendar.minTime();
    if (cfg.interruptPeriodPs > TimePs{} && t0 >= rs.nextInterrupt)
        return false; // interrupt service is due: sequential path
    const TimePs w1 = windowHorizon(rs);
    if (w1 <= t0)
        return false; // degenerate span: single sequential step

    const auto n = static_cast<CoreId>(cores.size());
    std::vector<CoreId> lanes;
    for (CoreId c = 0; c < n; ++c) {
        if (!rs.calendar.contains(c))
            continue;
        // Every live unit enters deferred mode — cores whose next
        // edge lies past W1 run no ticks but must still not see live
        // broadcasts; their logs stay empty.
        units[c]->beginWindow(w1);
        if (rs.calendar.timeOf(c) < w1)
            lanes.push_back(c);
    }
#ifdef CONTEST_CHECK_WINDOWS
    // Shadow-log lane slots are indexed by CoreId, so size to the
    // full core count; lanes that run no ticks stay empty.
    shadowLog_.beginWindow(n);
#endif

    // Advance each lane independently to its first edge at or past
    // W1. Inside the window a core touches only its own state (the
    // bound proves no cross-core interaction), so lanes may run on
    // any thread in any order.
    std::vector<TimePs> lane_edges(lanes.size());
    group.run(lanes.size(), [&](std::size_t i) {
        const CoreId c = lanes[i];
#ifdef CONTEST_CHECK_WINDOWS
        // Bind this worker thread to the lane for the duration of
        // the lane's run; one thread may execute several lanes.
        shadowSetCurrentLane(c);
#endif
        OooCore &core = *cores[c];
        CoreContestUnit &u = *units[c];
        const std::uint64_t step = core.periodPs().count();
        TimePs edge = rs.calendar.timeOf(c);
        while (edge < w1) {
            core.tick(edge);
            panic_if(core.done(),
                     "core %u finished inside a window", c);
            Cycles skipped{};
            if (!rs.noSkip) {
                Cycles max_skip = Cycles::max();
                if (cfg.interruptPeriodPs > TimePs{}) {
                    TimePs gap = rs.nextInterrupt - edge;
                    max_skip =
                        Cycles{(gap.count() - 1) / step};
                }
                skipped = core.skipIdleCycles(max_skip);
            }
            u.recordTick(edge, skipped);
            edge += TimePs{step * (skipped.count() + 1)};
        }
        lane_edges[i] = edge;
#ifdef CONTEST_CHECK_WINDOWS
        shadowClearCurrentLane();
#endif
    });

    commitWindow(rs, lanes, lane_edges);
    return true;
}

void
ContestSystem::commitWindow(RunState &rs,
                            const std::vector<CoreId> &lanes,
                            const std::vector<TimePs> &lane_edges)
{
    const auto n = static_cast<CoreId>(cores.size());
    for (CoreId c = 0; c < n; ++c)
        if (rs.calendar.contains(c))
            units[c]->endWindow();

#ifdef CONTEST_CHECK_WINDOWS
    // Verify the window before replaying anything: a cross-lane
    // write recorded during the window is a discipline violation
    // even if the replay below would happen to mask it.
    shadowLog_.verifyAndClose();
#endif

    // Merge the lanes' tick logs by (time, core id) — lanes are in
    // ascending core-id order, so taking the first strictly-smallest
    // time reproduces the calendar's tie-break — and replay each
    // tick's deferred events: exactly the order the sequential loop
    // would have produced them in.
    struct Cursor
    {
        std::size_t tick = 0;
        std::uint32_t ev = 0;
    };
    std::vector<Cursor> cur(lanes.size());
    for (;;) {
        std::size_t best = lanes.size();
        TimePs best_at{};
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            const CoreContestUnit &lu = *units[lanes[i]];
            if (cur[i].tick >= lu.windowTickCount())
                continue;
            // SoA tick log: the merge's inner loop reads only the
            // packed time array until a lane actually wins.
            const TimePs at = lu.windowTickAt(cur[i].tick);
            if (best == lanes.size() || at < best_at) {
                best = i;
                best_at = at;
            }
        }
        if (best == lanes.size())
            break;

        const CoreId c = lanes[best];
        CoreContestUnit &u = *units[c];
        const TimePs tk_at = u.windowTickAt(cur[best].tick);
        const Cycles tk_skipped = u.windowTickSkipped(cur[best].tick);
        const std::uint32_t ev_end = u.windowTickEvEnd(cur[best].tick);
        for (std::uint32_t e = cur[best].ev; e < ev_end; ++e) {
            if (!u.windowEventIsStore(e)) {
                const InstSeq seq{u.windowEventArg(e)};
                noteRetire(c, seq);
                const TimePs arrival = tk_at + cfg.grbLatencyPs;
                for (CoreId d = 0; d < n; ++d) {
                    if (d == c || units[d]->parked())
                        continue;
                    units[d]->commitDeferredResult(c, seq,
                                                   arrival, tk_at);
                }
            } else {
                storeQ->performStore(c, u.windowEventArg(e));
            }
        }
        cur[best].ev = ev_end;
        ++cur[best].tick;

        rs.skipRec[c] = RunState::SkipRecord{tk_at, tk_skipped};
        noteTickForWatchdog(rs, tk_skipped);
    }

    panic_if(parkEvents != rs.parksSeen,
             "a core parked inside an execution window (the FIFO "
             "slack bound must prevent overflow)");
    for (std::size_t i = 0; i < lanes.size(); ++i)
        rs.calendar.set(lanes[i], lane_edges[i]);
}

void
ContestSystem::runWindowed(RunState &rs, unsigned jobs)
{
    buildWindowIndexes();
    // Worker threads come from the process-wide lease shared with
    // the suite-level pool; whatever is granted — possibly nothing,
    // the group then runs every lane inline — the schedule and the
    // results are identical, only wall-clock changes.
    const unsigned lanes_wanted = std::min(
        jobs, static_cast<unsigned>(cores.size()));
    const unsigned granted = acquireContestWorkers(lanes_wanted - 1);
    {
        ContestWorkerGroup group(granted);
        while (!rs.finished)
            if (!executeWindow(rs, group))
                seqStep(rs);
    }
    releaseContestWorkers(granted);
#ifdef CONTEST_CHECK_WINDOWS
    inform("shadow access log: %llu window(s) verified, %llu "
           "access(es) checked, zero cross-lane write conflicts",
           static_cast<unsigned long long>(
               shadowLog_.windowsVerified()),
           static_cast<unsigned long long>(
               shadowLog_.accessesChecked()));
#endif
}

ContestResult
ContestSystem::run(unsigned contest_jobs)
{
    const auto n = static_cast<CoreId>(cores.size());

    // The event calendar orders clock edges by (time, core id), so
    // ties go to the lower core id — the same deterministic choice
    // the old linear min-scan made (the paper's round-robin
    // handshake order).
    RunState rs(n);
    rs.noSkip = simNoSkip();
    rs.parksSeen = parkEvents;
    rs.nextInterrupt = cfg.interruptPeriodPs;
    for (CoreId c = 0; c < n; ++c)
        rs.calendar.set(c, TimePs{});

    const unsigned jobs =
        contest_jobs != 0 ? contest_jobs : contestJobs();
    if (jobs > 1 && n > 1) {
        runWindowed(rs, jobs);
    } else {
        while (!rs.finished)
            seqStep(rs);
    }
    return collectResult(rs);
}

ContestResult
ContestSystem::collectResult(const RunState &rs)
{
    const auto n = static_cast<CoreId>(cores.size());
    ContestResult result;
    result.timePs = rs.finishTime;
    result.ipt = instPerNs(trace->endSeq(), rs.finishTime);
    for (CoreId c = 0; c < n; ++c) {
        result.coreStats.push_back(cores[c]->stats());
        result.unitStats.push_back(units[c]->stats());
        result.leadFraction.push_back(
            static_cast<double>(leadCounts[c])
            / static_cast<double>(trace->size()));

        // A parked core stops burning static power when it leaves
        // contesting mode.
        TimePs powered = units[c]->stats().saturated
            ? units[c]->stats().parkedAt
            : rs.finishTime;
        ActivityCounts activity = baseActivity(*cores[c]);
        activity.grbBroadcasts = units[c]->stats().broadcasts;
        activity.injections = cores[c]->stats().injected;
        result.energy.push_back(
            estimateEnergy(configs[c], cores[c]->stats(), activity,
                           powered));
    }
    result.leadChanges = leadChanges;
    result.mergedStores = storeQ->mergedCount();
    result.exceptionsHandled = excCoord->handled();
    result.interruptsHandled = interrupts;

    inform("contest finished: core %u ('%s') first at %.1f ns, "
           "IPT %.3f, %llu lead changes",
           rs.finisher, configs[rs.finisher].name.c_str(),
           static_cast<double>(rs.finishTime) / psPerNs, result.ipt,
           static_cast<unsigned long long>(leadChanges));
    return result;
}

SingleRunResult
runSingle(const CoreConfig &config, TracePtr trace)
{
    fatal_if(!trace || trace->empty(),
             "runSingle needs a non-empty trace");
    OooCore core(config, trace);
    const bool no_skip = simNoSkip();
    const std::uint64_t step = core.periodPs().count();
    TimePs t{};
    while (!core.done()) {
        core.tick(t);
        std::uint64_t ticks = 1;
        if (!no_skip && !core.done())
            ticks += core.skipIdleCycles(Cycles::max()).count();
        t += TimePs{step * ticks};
    }
    SingleRunResult r;
    r.timePs = t;
    r.ipt = instPerNs(trace->endSeq(), t);
    r.stats = core.stats();
    r.energy = estimateEnergy(config, core.stats(), baseActivity(core),
                              t);
    return r;
}

ActivityCounts
baseActivity(const OooCore &core)
{
    ActivityCounts activity;
    activity.l1Accesses = core.memory().l1().accesses();
    activity.l1Misses = core.memory().l1().misses();
    activity.l2Accesses = core.memory().l2().accesses();
    activity.l2Misses = core.memory().l2().misses();
    return activity;
}

} // namespace contest
