#include "contest/system.hh"

#include <algorithm>
#include <limits>

#include "common/env.hh"
#include "common/log.hh"

namespace contest
{

ContestSystem::ContestSystem(std::vector<CoreConfig> core_configs,
                             TracePtr trace_ptr,
                             const ContestConfig &contest_config)
    : configs(std::move(core_configs)), trace(std::move(trace_ptr)),
      cfg(contest_config)
{
    fatal_if(configs.empty(), "ContestSystem needs at least one core");
    fatal_if(!trace || trace->empty(),
             "ContestSystem needs a non-empty trace");

    const auto n = static_cast<unsigned>(configs.size());
    storeQ = std::make_unique<SyncStoreQueue>(n,
                                              cfg.storeQueueCapacity);
    excCoord = std::make_unique<ExceptionCoordinator>(
        n, cfg.syscallHandlerPs);
    leadCounts.assign(n, 0);

    for (CoreId i = 0; i < n; ++i)
        units.push_back(
            std::make_unique<CoreContestUnit>(i, cfg, this, n));
    for (CoreId i = 0; i < n; ++i) {
        cores.push_back(
            std::make_unique<OooCore>(configs[i], trace, i));
        cores[i]->attachContest(units[i].get(), cfg.injectionStyle);
        // Section 4.2: private levels are write-through in
        // contesting mode.
        cores[i]->memory().setWriteThrough(true);
        units[i]->setCore(cores[i].get());
    }

    fatal_if(cfg.interruptPeriodPs > TimePs{}
                 && cfg.interruptPeriodPs <= cfg.interruptHandlerPs,
             "interrupt period (%llu ps) must exceed the handler "
             "time (%llu ps) or the system never executes",
             static_cast<unsigned long long>(cfg.interruptPeriodPs),
             static_cast<unsigned long long>(
                 cfg.interruptHandlerPs));
    if (cfg.interruptPeriodPs > TimePs{}) {
        // Prefix store counts let a refork reposition the
        // synchronizing store queue in O(1).
        storePrefix.reserve(trace->size() + 1);
        std::uint32_t count = 0;
        storePrefix.push_back(0);
        for (std::size_t i = 0; i < trace->size(); ++i) {
            if ((*trace)[i].op == OpClass::Store)
                ++count;
            storePrefix.push_back(count);
        }
    }

    // Section 4.1.4 static condition: the peak retirement rate of
    // any core should be sustainable by every other core.
    double max_peak = 0.0;
    for (const auto &c : configs)
        max_peak = std::max(max_peak, c.peakIps());
    for (const auto &c : configs) {
        if (c.peakIps() < max_peak * 0.5) {
            inform("core type '%s' (peak %.1f inst/ns) may be a "
                   "saturated lagger (system peak %.1f inst/ns)",
                   c.name.c_str(), c.peakIps(), max_peak);
        }
    }
}

ContestSystem::~ContestSystem() = default;

void
ContestSystem::broadcast(CoreId from, InstSeq seq, TimePs now)
{
    for (CoreId c = 0; c < units.size(); ++c) {
        if (c == from || units[c]->parked())
            continue;
        units[c]->receiveResult(from, seq, now + cfg.grbLatencyPs);
    }
}

void
ContestSystem::corePark(CoreId core, TimePs now)
{
    storeQ->dropCore(core);
    excCoord->dropCore(core, now);
    ++parkEvents;
    inform("core %u ('%s') parked as a saturated lagger at %.1f ns",
           core, configs[core].name.c_str(),
           static_cast<double>(now) / psPerNs);
}

void
ContestSystem::noteRetire(CoreId core, InstSeq seq)
{
    if (seq != frontier)
        return; // a lagger re-retiring an already-led instruction
    if (frontier > InstSeq{} && core != lastLeader)
        ++leadChanges;
    lastLeader = core;
    ++leadCounts[core];
    ++frontier;
}

void
ContestSystem::serviceInterrupt(TimePs now, TickCalendar &calendar)
{
    // The designated core (core 0) listens for external interrupts.
    // Stopping every redundant thread at the same point would need
    // elaborate handshaking, so the paper terminates the
    // non-designated threads, services the interrupt on the
    // designated core, and reforks everyone at its position.
    InstSeq refork_at = cores[0]->retired();
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (units[c]->parked())
            continue;
        cores[c]->reforkTo(refork_at);
        units[c]->reforkTo(refork_at);
        calendar.set(c, now + cfg.interruptHandlerPs);
    }
    storeQ->reforkAll(
        StoreSeq{storePrefix[static_cast<std::size_t>(refork_at.count())]});
    ++interrupts;
    inform("interrupt at %.1f ns: reforked all cores at "
           "instruction %llu",
           static_cast<double>(now) / psPerNs,
           static_cast<unsigned long long>(refork_at));
}

ContestResult
ContestSystem::run()
{
    const auto n = static_cast<CoreId>(cores.size());
    const bool no_skip = simNoSkip();

    // The event calendar orders clock edges by (time, core id), so
    // ties go to the lower core id — the same deterministic choice
    // the old linear min-scan made (the paper's round-robin
    // handshake order).
    TickCalendar calendar(n);
    for (CoreId c = 0; c < n; ++c)
        calendar.set(c, TimePs{});

    // A skipping core's elided ticks happen "eagerly" when they are
    // scheduled. If the core is parked mid-window (another core's
    // broadcast overflows its FIFO), the elided ticks that would
    // have ordered after the parking tick must be rewound; remember
    // each core's latest window for that.
    struct SkipRecord
    {
        TimePs tickedAt{};
        Cycles scheduled{};
    };
    std::vector<SkipRecord> skipRec(n);
    std::uint64_t parks_seen = parkEvents;

    // Rewind the part of @p c's last skip window that would have
    // ordered at or after the (time, id) edge (@p t, @p pick):
    // elided tick i sat at rec.tickedAt + i*period and really
    // elapsed iff its edge ordered before (t, pick).
    auto rewindPastEdge = [&](CoreId c, TimePs t, CoreId pick) {
        SkipRecord &rec = skipRec[c];
        if (rec.scheduled == Cycles{})
            return;
        std::uint64_t step = cores[c]->periodPs().count();
        std::uint64_t d = (t - rec.tickedAt).count();
        std::uint64_t num_lt = d > 0 ? (d - 1) / step : 0;
        std::uint64_t num_eq =
            (c < pick && d > 0 && d % step == 0) ? 1 : 0;
        std::uint64_t executed = num_lt + num_eq;
        if (executed < rec.scheduled.count()) {
            cores[c]->rewindIdleTicks(rec.scheduled
                                      - Cycles{executed});
            rec.scheduled = Cycles{executed};
        }
    };

    TimePs finish_time{};
    CoreId finisher = 0;
    bool finished = false;
    TimePs nextInterruptPs = cfg.interruptPeriodPs;

    // Deadlock watchdog: simulated ticks (including fast-forwarded
    // ones) since the retire frontier last advanced, so skipping
    // can neither mask nor falsely trigger the panic.
    InstSeq last_frontier{};
    std::uint64_t stuck_ticks = 0;
    const std::uint64_t stuck_limit = cfg.deadlockStuckTicks;

    while (!finished) {
        panic_if(calendar.empty(),
                 "contest deadlock: every core is parked");
        TimePs t = calendar.minTime();
        CoreId pick = calendar.minCore();

        if (cfg.interruptPeriodPs > TimePs{} && t >= nextInterruptPs) {
            serviceInterrupt(nextInterruptPs, calendar);
            nextInterruptPs += cfg.interruptPeriodPs;
            continue; // re-pick with the updated tick times
        }

        cores[pick]->tick(t);

        Cycles skipped{};
        if (!no_skip && !cores[pick]->done()) {
            Cycles max_skip = Cycles::max();
            if (cfg.interruptPeriodPs > TimePs{}) {
                // Every elided tick at t + i*period must precede
                // the next interrupt edge; the first edge at or
                // past it must be picked live so the service fires.
                TimePs gap = nextInterruptPs - t;
                max_skip = Cycles{
                    (gap.count() - 1)
                    / cores[pick]->periodPs().count()};
            }
            skipped = cores[pick]->skipIdleCycles(max_skip);
        }
        skipRec[pick] = SkipRecord{t, skipped};
        calendar.set(pick,
                     t + TimePs{cores[pick]->periodPs().count()
                                * (skipped.count() + 1)});

        if (cores[pick]->done()) {
            finished = true;
            finisher = pick;
            finish_time = t + cores[pick]->periodPs();
        }

        if (parkEvents != parks_seen) {
            // Someone parked during this tick (a broadcast from
            // `pick` overflowed their FIFO). Drop them from the
            // calendar and rewind any elided ticks that would have
            // ordered after this tick's (t, pick) edge.
            parks_seen = parkEvents;
            for (CoreId c = 0; c < n; ++c) {
                if (!units[c]->parked() || !calendar.contains(c))
                    continue;
                calendar.remove(c);
                rewindPastEdge(c, t, pick);
            }
        }

        if (frontier != last_frontier) {
            last_frontier = frontier;
            // Elided ticks follow the retiring tick, so they open
            // the next stuck window.
            stuck_ticks = skipped.count();
        } else {
            stuck_ticks += 1 + skipped.count();
        }
        if (!finished && stuck_ticks > stuck_limit)
            panic("contest deadlock: no retirement in %llu ticks "
                  "(frontier %llu of %zu)",
                  static_cast<unsigned long long>(stuck_limit),
                  static_cast<unsigned long long>(frontier),
                  trace->size());

        if (finished) {
            // Per-cycle stepping stops every other core at its last
            // edge before (t, finisher); drop the losers' eagerly
            // elided ticks that would have ordered after it.
            for (CoreId c = 0; c < n; ++c)
                if (c != finisher)
                    rewindPastEdge(c, t, finisher);
        }
    }

    ContestResult result;
    result.timePs = finish_time;
    result.ipt = instPerNs(trace->endSeq(), finish_time);
    for (CoreId c = 0; c < n; ++c) {
        result.coreStats.push_back(cores[c]->stats());
        result.unitStats.push_back(units[c]->stats());
        result.leadFraction.push_back(
            static_cast<double>(leadCounts[c])
            / static_cast<double>(trace->size()));

        // A parked core stops burning static power when it leaves
        // contesting mode.
        TimePs powered = units[c]->stats().saturated
            ? units[c]->stats().parkedAt
            : finish_time;
        ActivityCounts activity = baseActivity(*cores[c]);
        activity.grbBroadcasts = units[c]->stats().broadcasts;
        activity.injections = cores[c]->stats().injected;
        result.energy.push_back(
            estimateEnergy(configs[c], cores[c]->stats(), activity,
                           powered));
    }
    result.leadChanges = leadChanges;
    result.mergedStores = storeQ->mergedCount();
    result.exceptionsHandled = excCoord->handled();
    result.interruptsHandled = interrupts;

    inform("contest finished: core %u ('%s') first at %.1f ns, "
           "IPT %.3f, %llu lead changes",
           finisher, configs[finisher].name.c_str(),
           static_cast<double>(finish_time) / psPerNs, result.ipt,
           static_cast<unsigned long long>(leadChanges));
    return result;
}

SingleRunResult
runSingle(const CoreConfig &config, TracePtr trace)
{
    fatal_if(!trace || trace->empty(),
             "runSingle needs a non-empty trace");
    OooCore core(config, trace);
    const bool no_skip = simNoSkip();
    const std::uint64_t step = core.periodPs().count();
    TimePs t{};
    while (!core.done()) {
        core.tick(t);
        std::uint64_t ticks = 1;
        if (!no_skip && !core.done())
            ticks += core.skipIdleCycles(Cycles::max()).count();
        t += TimePs{step * ticks};
    }
    SingleRunResult r;
    r.timePs = t;
    r.ipt = instPerNs(trace->endSeq(), t);
    r.stats = core.stats();
    r.energy = estimateEnergy(config, core.stats(), baseActivity(core),
                              t);
    return r;
}

ActivityCounts
baseActivity(const OooCore &core)
{
    ActivityCounts activity;
    activity.l1Accesses = core.memory().l1().accesses();
    activity.l1Misses = core.memory().l1().misses();
    activity.l2Accesses = core.memory().l2().accesses();
    activity.l2Misses = core.memory().l2().misses();
    return activity;
}

} // namespace contest
