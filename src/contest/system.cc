#include "contest/system.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/env.hh"
#include "common/log.hh"

namespace contest
{


ContestSystem::ContestSystem(std::vector<CoreConfig> core_configs,
                             TracePtr trace_ptr,
                             const ContestConfig &contest_config)
    : configs(std::move(core_configs)), trace(std::move(trace_ptr)),
      cfg(contest_config)
{
    fatal_if(configs.empty(), "ContestSystem needs at least one core");
    fatal_if(!trace || trace->empty(),
             "ContestSystem needs a non-empty trace");

    const auto n = static_cast<unsigned>(configs.size());
    storeQ = std::make_unique<SyncStoreQueue>(n,
                                              cfg.storeQueueCapacity);
    excCoord = std::make_unique<ExceptionCoordinator>(
        n, cfg.syscallHandlerPs);
    leadCounts.assign(n, 0);

    for (CoreId i = 0; i < n; ++i)
        units.push_back(
            std::make_unique<CoreContestUnit>(i, cfg, this, n));
    for (CoreId i = 0; i < n; ++i) {
        cores.push_back(
            std::make_unique<OooCore>(configs[i], trace, i));
        cores[i]->attachContest(units[i].get(), cfg.injectionStyle);
        // Section 4.2: private levels are write-through in
        // contesting mode.
        cores[i]->memory().setWriteThrough(true);
        units[i]->setCore(cores[i].get());
    }

    fatal_if(cfg.interruptPeriodPs > TimePs{}
                 && cfg.interruptPeriodPs <= cfg.interruptHandlerPs,
             "interrupt period (%llu ps) must exceed the handler "
             "time (%llu ps) or the system never executes",
             static_cast<unsigned long long>(cfg.interruptPeriodPs),
             static_cast<unsigned long long>(
                 cfg.interruptHandlerPs));
    if (cfg.interruptPeriodPs > TimePs{}) {
        // Prefix store counts let a refork reposition the
        // synchronizing store queue in O(1).
        storePrefix.reserve(trace->size() + 1);
        std::uint32_t count = 0;
        storePrefix.push_back(0);
        for (std::size_t i = 0; i < trace->size(); ++i) {
            if ((*trace)[i].op == OpClass::Store)
                ++count;
            storePrefix.push_back(count);
        }
    }

    // Section 4.1.4 static condition: the peak retirement rate of
    // any core should be sustainable by every other core.
    double max_peak = 0.0;
    for (const auto &c : configs)
        max_peak = std::max(max_peak, c.peakIps());
    for (const auto &c : configs) {
        if (c.peakIps() < max_peak * 0.5) {
            inform("core type '%s' (peak %.1f inst/ns) may be a "
                   "saturated lagger (system peak %.1f inst/ns)",
                   c.name.c_str(), c.peakIps(), max_peak);
        }
    }
}

ContestSystem::~ContestSystem() = default;

void
ContestSystem::broadcast(CoreId from, InstSeq seq, TimePs now)
{
    for (CoreId c = 0; c < units.size(); ++c) {
        if (c == from || units[c]->parked())
            continue;
        CONTEST_SHADOW_RECORD(shadowLog_, c, FifoState, true,
                              "ContestSystem::broadcast");
        units[c]->receiveResult(from, seq, now + cfg.grbLatencyPs);
    }
}

void
ContestSystem::corePark(CoreId core, TimePs now)
{
    storeQ->dropCore(core);
    excCoord->dropCore(core, now);
    ++parkEvents;
    inform("core %u ('%s') parked as a saturated lagger at %.1f ns",
           core, configs[core].name.c_str(),
           static_cast<double>(now) / psPerNs);
}

void
ContestSystem::noteRetire(CoreId core, InstSeq seq)
{
    CONTEST_SHADOW_RECORD(shadowLog_, kShadowGlobalOwner,
                          LeadFrontier, true,
                          "ContestSystem::noteRetire");
    if (seq != frontier)
        return; // a lagger re-retiring an already-led instruction
    if (frontier > InstSeq{} && core != lastLeader)
        ++leadChanges;
    lastLeader = core;
    ++leadCounts[core];
    ++frontier;
}

void
ContestSystem::serviceInterrupt(TimePs now, TickCalendar &calendar)
{
    // The designated core (core 0) listens for external interrupts.
    // Stopping every redundant thread at the same point would need
    // elaborate handshaking, so the paper terminates the
    // non-designated threads, services the interrupt on the
    // designated core, and reforks everyone at its position.
    InstSeq refork_at = cores[0]->retired();
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (units[c]->parked())
            continue;
        cores[c]->reforkTo(refork_at);
        units[c]->reforkTo(refork_at);
        calendar.set(c, now + cfg.interruptHandlerPs);
    }
    storeQ->reforkAll(
        StoreSeq{storePrefix[static_cast<std::size_t>(refork_at.count())]});
    ++interrupts;
    inform("interrupt at %.1f ns: reforked all cores at "
           "instruction %llu",
           static_cast<double>(now) / psPerNs,
           static_cast<unsigned long long>(refork_at));
}

void
ContestSystem::rewindPastEdge(RunState &rs, CoreId c, TimePs t,
                              CoreId pick)
{
    // A skipping core's elided ticks happen "eagerly" when they are
    // scheduled; the ones that would have ordered at or after the
    // (time, id) edge (t, pick) have not really elapsed: elided tick
    // i sat at rec.tickedAt + i*period and really elapsed iff its
    // edge ordered before (t, pick).
    RunState::SkipRecord &rec = rs.skipRec[c];
    if (rec.scheduled == Cycles{})
        return;
    std::uint64_t step = cores[c]->periodPs().count();
    std::uint64_t d = (t - rec.tickedAt).count();
    std::uint64_t num_lt = d > 0 ? (d - 1) / step : 0;
    std::uint64_t num_eq =
        (c < pick && d > 0 && d % step == 0) ? 1 : 0;
    std::uint64_t executed = num_lt + num_eq;
    if (executed < rec.scheduled.count()) {
        cores[c]->rewindIdleTicks(rec.scheduled - Cycles{executed});
        rec.scheduled = Cycles{executed};
    }
}

void
ContestSystem::noteTickForWatchdog(RunState &rs, Cycles skipped)
{
    // Deadlock watchdog: simulated ticks (including fast-forwarded
    // ones) since the retire frontier last advanced, so skipping
    // can neither mask nor falsely trigger the panic.
    if (frontier != rs.lastFrontier) {
        rs.lastFrontier = frontier;
        // Elided ticks follow the retiring tick, so they open the
        // next stuck window.
        rs.stuckTicks = skipped.count();
    } else {
        rs.stuckTicks += 1 + skipped.count();
    }
    if (!rs.finished && rs.stuckTicks > cfg.deadlockStuckTicks)
        panic("contest deadlock: no retirement in %llu ticks "
              "(frontier %llu of %zu)",
              static_cast<unsigned long long>(cfg.deadlockStuckTicks),
              static_cast<unsigned long long>(frontier),
              trace->size());
}

void
ContestSystem::seqStep(RunState &rs)
{
    const auto n = static_cast<CoreId>(cores.size());
    panic_if(rs.calendar.empty(),
             "contest deadlock: every core is parked");
    TimePs t = rs.calendar.minTime();
    CoreId pick = rs.calendar.minCore();

    if (cfg.interruptPeriodPs > TimePs{} && t >= rs.nextInterrupt) {
        serviceInterrupt(rs.nextInterrupt, rs.calendar);
        rs.nextInterrupt += cfg.interruptPeriodPs;
        return; // re-pick with the updated tick times
    }

    cores[pick]->tick(t);

    Cycles skipped{};
    if (!rs.noSkip && !cores[pick]->done()) {
        Cycles max_skip = Cycles::max();
        if (cfg.interruptPeriodPs > TimePs{}) {
            // Every elided tick at t + i*period must precede
            // the next interrupt edge; the first edge at or
            // past it must be picked live so the service fires.
            TimePs gap = rs.nextInterrupt - t;
            max_skip = Cycles{
                (gap.count() - 1)
                / cores[pick]->periodPs().count()};
        }
        skipped = cores[pick]->skipIdleCycles(max_skip);
    }
    rs.skipRec[pick] = RunState::SkipRecord{t, skipped};
    rs.calendar.set(pick,
                    t + TimePs{cores[pick]->periodPs().count()
                               * (skipped.count() + 1)});

    if (cores[pick]->done()) {
        rs.finished = true;
        rs.finisher = pick;
        rs.finishTime = t + cores[pick]->periodPs();
    }

    if (parkEvents != rs.parksSeen) {
        // Someone parked during this tick (a broadcast from
        // `pick` overflowed their FIFO). Drop them from the
        // calendar and rewind any elided ticks that would have
        // ordered after this tick's (t, pick) edge.
        rs.parksSeen = parkEvents;
        for (CoreId c = 0; c < n; ++c) {
            if (!units[c]->parked() || !rs.calendar.contains(c))
                continue;
            rs.calendar.remove(c);
            rewindPastEdge(rs, c, t, pick);
        }
    }

    noteTickForWatchdog(rs, skipped);

    if (rs.finished) {
        // Per-cycle stepping stops every other core at its last
        // edge before (t, finisher); drop the losers' eagerly
        // elided ticks that would have ordered after it.
        for (CoreId c = 0; c < n; ++c)
            if (c != rs.finisher)
                rewindPastEdge(rs, c, t, rs.finisher);
    }
}

void
ContestSystem::buildWindowIndexes()
{
    if (windowIndexesBuilt)
        return;
    for (std::size_t i = 0; i < trace->size(); ++i) {
        const OpClass op = (*trace)[InstSeq{i}].op;
        if (op == OpClass::Syscall)
            syscallSeqs.push_back(InstSeq{i});
        else if (op == OpClass::Store)
            storeSeqs.push_back(InstSeq{i});
    }
    windowIndexesBuilt = true;
}

namespace
{

/** Most ticks a core retiring <= width instructions per tick can
 *  execute from retirement position @p r0 without its retirement
 *  (or any hook argument derived from it) reaching position @p s. */
std::uint64_t
stepsBelow(std::uint64_t s, std::uint64_t r0, std::uint64_t width)
{
    return s > r0 ? (s - r0 - 1) / width : 0;
}

/** Seconds elapsed since @p t0 on the steady clock. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

TimePs
ContestSystem::windowHorizon(RunState &rs)
{
    const auto n = static_cast<CoreId>(cores.size());
    // Cap on any core's in-window ticks: bounds the per-lane tick
    // and event logs (and the bound arithmetic) regardless of how
    // inert the timeline is. Adaptive: runWindowed grows it toward
    // cfg.maxWindowTicks while windows commit cleanly. The cap is
    // applied at use time so the cached k terms stay cap-independent.
    const std::uint64_t max_ticks = rs.capTicks;

    TimePs w1 = TimePs::max();
    // No in-window edge may reach the next interrupt: servicing
    // terminates-and-reforks every core, a cross-core effect only
    // the sequential path performs.
    if (cfg.interruptPeriodPs > TimePs{})
        w1 = std::min(w1, rs.nextInterrupt);

    if (rs.selfTerms.size() != n) {
        rs.selfTerms.assign(n, RunState::SelfTerms{});
        rs.pairTerms.assign(static_cast<std::size_t>(n) * n,
                            RunState::PairTerms{});
    }
    const std::uint64_t merged = storeQ->mergedCount().count();

    for (CoreId c = 0; c < n; ++c) {
        if (!rs.calendar.contains(c))
            continue;
        const OooCore &core = *cores[c];
        const std::uint64_t edge = rs.calendar.timeOf(c).count();
        // Raw counts on purpose: the bound arithmetic mixes ps,
        // cycles and sequence numbers, guarded by comparisons.
        // contest-lint: allow(bare-u64-quantity)
        const std::uint64_t period = core.periodPs().count();
        const std::uint64_t width = core.config().width;
        const std::uint64_t r0 = core.retired().count();

        // Self bounds: the core must not finish the trace, reach a
        // syscall rendezvous, or meet the first store the queue
        // could refuse (its un-merged backlog measured now; merging
        // only ever frees more room, so this is conservative).
        // Cached: the terms depend only on (r0, performed, merged),
        // so a core that merely skipped idle cycles reuses them.
        RunState::SelfTerms &st = rs.selfTerms[c];
        const std::uint64_t performed =
            storeQ->performedBy(c).count();
        if (st.valid && st.r0 == r0 && st.performed == performed
            && st.merged == merged) {
            ++winStats_.horizonReuses;
        } else {
            ++winStats_.horizonRecomputes;
            if (!st.valid || r0 < st.r0) {
                // First use or refork: seed the cursors by search.
                st.syCur = static_cast<std::size_t>(
                    std::lower_bound(syscallSeqs.begin(),
                                     syscallSeqs.end(), InstSeq{r0})
                    - syscallSeqs.begin());
                st.stCur = static_cast<std::size_t>(
                    std::lower_bound(storeSeqs.begin(),
                                     storeSeqs.end(), InstSeq{r0})
                    - storeSeqs.begin());
            } else {
                // Retirement only moved forward: advance linearly
                // (amortized O(1) over the run).
                while (st.syCur < syscallSeqs.size()
                       && syscallSeqs[st.syCur].count() < r0)
                    ++st.syCur;
                while (st.stCur < storeSeqs.size()
                       && storeSeqs[st.stCur].count() < r0)
                    ++st.stCur;
            }
            std::uint64_t k =
                stepsBelow(trace->endSeq().count(), r0, width);
            if (st.syCur < syscallSeqs.size())
                k = std::min(k,
                             stepsBelow(
                                 syscallSeqs[st.syCur].count(), r0,
                                 width));
            if (!storeSeqs.empty()) {
                const std::uint64_t backlog = performed - merged;
                const std::uint64_t allowance =
                    cfg.storeQueueCapacity - backlog;
                if (st.stCur + allowance < storeSeqs.size())
                    k = std::min(
                        k,
                        stepsBelow(
                            storeSeqs[st.stCur + allowance].count(),
                            r0, width));
            }
            st.valid = true;
            st.r0 = r0;
            st.performed = performed;
            st.merged = merged;
            st.k = k;
        }
        std::uint64_t k = std::min(max_ticks, st.k);

        for (CoreId d = 0; d < n; ++d) {
            if (d == c || !rs.calendar.contains(d))
                continue;
            const OooCore &recv = *cores[d];
            // Pair terms, this core sending to receiver d. Cached on
            // the (sender retired, receiver fetch, receiver floor,
            // receiver FIFO depth) signature.
            RunState::PairTerms &pt =
                rs.pairTerms[static_cast<std::size_t>(c) * n + d];
            const std::uint64_t f_b = recv.nextFetchSeq().count();
            const std::uint64_t floor_b =
                recv.hookArgFloor().count();
            const std::size_t depth = units[d]->fifoDepth(c);
            if (pt.valid && pt.r0 == r0 && pt.fetch == f_b
                && pt.floor == floor_b && pt.depth == depth) {
                ++winStats_.horizonReuses;
            } else {
                ++winStats_.horizonRecomputes;
                // Sender slack bound: this core's broadcasts must
                // fit into the receiver's free FIFO slack even if
                // the receiver never pops, so no in-window push can
                // overflow (= park anyone).
                pt.kSlack =
                    (cfg.fifoCapacity - depth) / width;
                // Ordered-pair bound: the window is inert if EITHER
                // the receiver's hook arguments stay strictly below
                // the sender's next retirement ("reach": new results
                // sit at the FIFO tail, invisible to pairing and
                // discarding) OR the sender's in-window retirements
                // stay strictly below the receiver's argument floor
                // ("late": every new result is a late, discardable
                // one, replayed exactly by the commit phase). Each
                // candidate constrains only its own core's ticks and
                // is sound on its own, so the pair contributes the
                // larger of the two.
                pt.kReach =
                    r0 > f_b ? (r0 - f_b) / recv.config().width : 0;
                pt.kLate =
                    floor_b > r0 ? (floor_b - r0) / width : 0;
                pt.valid = true;
                pt.r0 = r0;
                pt.fetch = f_b;
                pt.floor = floor_b;
                pt.depth = depth;
            }
            k = std::min(k, pt.kSlack);
            const std::uint64_t reach_bound =
                rs.calendar.timeOf(d).count()
                + recv.periodPs().count()
                      * std::min(max_ticks, pt.kReach);
            const std::uint64_t late_bound =
                edge + period * std::min(max_ticks, pt.kLate);
            w1 = std::min(w1,
                          TimePs{std::max(reach_bound, late_bound)});
        }
        w1 = std::min(w1, TimePs{edge + period * k});
    }
    return w1;
}

ContestSystem::WindowAttempt
ContestSystem::executeWindow(RunState &rs, ContestWorkerGroup &group)
{
    if (rs.calendar.empty()) {
        ++winStats_.seqRequiredFallbacks;
        return WindowAttempt::SeqOnly; // seqStep raises the
                                       // all-parked panic
    }
    const TimePs t0 = rs.calendar.minTime();
    if (cfg.interruptPeriodPs > TimePs{} && t0 >= rs.nextInterrupt) {
        ++winStats_.seqRequiredFallbacks;
        return WindowAttempt::SeqOnly; // interrupt service is due
    }

    // Steady-state allocation probe (test hook): sample before the
    // horizon so the whole window body is covered.
    const bool probing = allocProbe_ != nullptr
        && winStats_.windows >= allocProbeWarmup_;
    const std::uint64_t allocs0 =
        probing ? allocProbe_->load(std::memory_order_relaxed) : 0;

    // One clock read per phase boundary, each doubling as the next
    // phase's start: 4 reads per window, not 6. Lane setup (the
    // beginWindow/reserve loop) is charged to the lane phase.
    const auto t_hz = std::chrono::steady_clock::now();
    const TimePs w1 = windowHorizon(rs);
    const auto t_lane = std::chrono::steady_clock::now();
    winStats_.horizonSec +=
        std::chrono::duration<double>(t_lane - t_hz).count();
    if (w1 <= t0) {
        ++winStats_.degenerateFallbacks;
        return WindowAttempt::Degenerate;
    }

    const auto n = static_cast<CoreId>(cores.size());
    rs.lanes.clear();
    bool logs_grew = false;
    for (CoreId c = 0; c < n; ++c) {
        if (!rs.calendar.contains(c))
            continue;
        // Every live unit enters deferred mode — cores whose next
        // edge lies past W1 run no ticks but must still not see live
        // broadcasts; their logs stay empty.
        units[c]->beginWindow(w1);
        const TimePs edge = rs.calendar.timeOf(c);
        if (edge < w1) {
            rs.lanes.push_back(c);
            // Bound the lane's logs up front so the lane loop
            // performs no allocation: at most ceil(span/period)
            // executed ticks, each deferring at most width retires
            // plus width store commits.
            const OooCore &core = *cores[c];
            const std::uint64_t span = (w1 - edge).count();
            const std::uint64_t period = core.periodPs().count();  // contest-lint: allow(bare-u64-quantity)
            const std::size_t max_lane_ticks =
                static_cast<std::size_t>((span + period - 1)
                                         / period);
            logs_grew |= units[c]->reserveWindowLogs(
                max_lane_ticks,
                2 * core.config().width * max_lane_ticks);
        }
    }
#ifdef CONTEST_CHECK_WINDOWS
    // Shadow-log lane slots are indexed by CoreId, so size to the
    // full core count; lanes that run no ticks stay empty.
    shadowLog_.beginWindow(n);
#endif

    // Advance each lane independently to its first edge at or past
    // W1. Inside the window a core touches only its own state (the
    // bound proves no cross-core interaction), so lanes may run on
    // any thread in any order.
    rs.laneEdges.resize(rs.lanes.size());
    // Loop invariants hoisted into the closure: core.tick may alias
    // anything through `this`, so without the locals the compiler
    // must reload cfg and rs fields on every iteration.
    const bool no_skip = rs.noSkip;
    const bool has_irq = cfg.interruptPeriodPs > TimePs{};
    const TimePs next_irq = rs.nextInterrupt;
    const auto lane_body = [&](std::size_t i) {
        const CoreId c = rs.lanes[i];
#ifdef CONTEST_CHECK_WINDOWS
        // Bind this worker thread to the lane for the duration of
        // the lane's run; one thread may execute several lanes.
        shadowSetCurrentLane(c);
#endif
        OooCore &core = *cores[c];
        CoreContestUnit &u = *units[c];
        const std::uint64_t step = core.periodPs().count();
        TimePs edge = rs.calendar.timeOf(c);
        while (edge < w1) {
            core.tick(edge);
            panic_if(core.done(),
                     "core %u finished inside a window", c);
            Cycles skipped{};
            if (!no_skip) {
                Cycles max_skip = Cycles::max();
                if (has_irq) {
                    TimePs gap = next_irq - edge;
                    max_skip =
                        Cycles{(gap.count() - 1) / step};
                }
                skipped = core.skipIdleCycles(max_skip);
            }
            u.recordTick(edge, skipped);
            edge += TimePs{step * (skipped.count() + 1)};
        }
        rs.laneEdges[i] = edge;
#ifdef CONTEST_CHECK_WINDOWS
        shadowClearCurrentLane();
#endif
    };
    group.run(rs.lanes.size(), lane_body);
    const auto t_commit = std::chrono::steady_clock::now();
    winStats_.laneSec +=
        std::chrono::duration<double>(t_commit - t_lane).count();

    commitWindow(rs);
    const auto t_done = std::chrono::steady_clock::now();
    winStats_.commitSec +=
        std::chrono::duration<double>(t_done - t_commit).count();

    std::uint64_t ticks = 0;
    for (const CoreId c : rs.lanes)
        ticks += units[c]->windowTickCount();
    winStats_.recordWindow(ticks, rs.lanes.size());
    // A window that set a new log high-water mark is still warm-up,
    // however late it runs: reserve() legitimately reallocates for
    // the first window at each new size, and "steady state" means
    // all high-water marks have been reached.
    if (probing && !logs_grew) {
        winStats_.steadyAllocs +=
            allocProbe_->load(std::memory_order_relaxed) - allocs0;
        ++winStats_.steadyWindows;
    }
    return WindowAttempt::Ran;
}

void
ContestSystem::commitWindow(RunState &rs)
{
    const std::vector<CoreId> &lanes = rs.lanes;
    const std::vector<TimePs> &lane_edges = rs.laneEdges;
    const auto n = static_cast<CoreId>(cores.size());
    for (CoreId c = 0; c < n; ++c)
        if (rs.calendar.contains(c))
            units[c]->endWindow();

#ifdef CONTEST_CHECK_WINDOWS
    // Verify the window before replaying anything: a cross-lane
    // write recorded during the window is a discipline violation
    // even if the replay below would happen to mask it.
    shadowLog_.verifyAndClose();
#endif

    // Merge the lanes' tick logs by (time, core id) — lanes are in
    // ascending core-id order, so taking the first strictly-smallest
    // time reproduces the calendar's tie-break — and replay each
    // tick's deferred events: exactly the order the sequential loop
    // would have produced them in.
    using MergeLane = RunState::MergeLane;
    std::vector<MergeLane> &merge = rs.merge;
    merge.clear();
    for (const CoreId c : lanes) {
        CoreContestUnit &u = *units[c];
        merge.push_back(MergeLane{
            u.windowTickData(),
            static_cast<std::uint32_t>(u.windowTickCount()), 0, 0,
            &u, c});
    }
    // The watchdog runs inline on hoisted state: per merged tick it
    // is one compare plus an add, and writing the run-state fields
    // back once per window keeps the loop's stores to the logs only.
    InstSeq last_frontier = rs.lastFrontier;
    std::uint64_t stuck = rs.stuckTicks;
    for (;;) {
        std::size_t best = merge.size();
        TimePs best_at{};
        for (std::size_t i = 0; i < merge.size(); ++i) {
            const MergeLane &ml = merge[i];
            if (ml.tick >= ml.count)
                continue;
            // SoA tick log: the merge's inner loop reads only the
            // packed time array until a lane actually wins.
            const TimePs at = ml.at[ml.tick];
            if (best == merge.size() || at < best_at) {
                best = i;
                best_at = at;
            }
        }
        if (best == merge.size())
            break;

        MergeLane &ml = merge[best];
        const CoreId c = ml.core;
        CoreContestUnit &u = *ml.unit;
        const TimePs tk_at = best_at;
        const Cycles tk_skipped = u.windowTickSkipped(ml.tick);
        const std::uint32_t ev_end = u.windowTickEvEnd(ml.tick);
        for (std::uint32_t e = ml.ev; e < ev_end; ++e) {
            if (!u.windowEventIsStore(e)) {
                const InstSeq seq{u.windowEventArg(e)};
                noteRetire(c, seq);
                const TimePs arrival = tk_at + cfg.grbLatencyPs;
                for (CoreId d = 0; d < n; ++d) {
                    if (d == c || units[d]->parked())
                        continue;
                    units[d]->commitDeferredResult(c, seq,
                                                   arrival, tk_at);
                }
            } else {
                storeQ->performStore(c, u.windowEventArg(e));
            }
        }
        ml.ev = ev_end;
        ++ml.tick;

        // noteTickForWatchdog, inlined on the hoisted state. Windows
        // never finish a core (the lane loop panics if one does), so
        // rs.finished cannot flip mid-merge.
        if (frontier != last_frontier) {
            last_frontier = frontier;
            stuck = tk_skipped.count();
        } else {
            stuck += 1 + tk_skipped.count();
        }
        if (stuck > cfg.deadlockStuckTicks)
            panic("contest deadlock: no retirement in %llu ticks "
                  "(frontier %llu of %zu)",
                  static_cast<unsigned long long>(
                      cfg.deadlockStuckTicks),
                  static_cast<unsigned long long>(frontier),
                  trace->size());
    }
    rs.lastFrontier = last_frontier;
    rs.stuckTicks = stuck;

    // Only a skip record's final value is ever read (rewindPastEdge
    // runs on the sequential path, after the commit): one write per
    // lane, not one per merged tick.
    for (const MergeLane &ml : merge)
        if (ml.count > 0)
            rs.skipRec[ml.core] = RunState::SkipRecord{
                ml.at[ml.count - 1],
                ml.unit->windowTickSkipped(ml.count - 1)};

    panic_if(parkEvents != rs.parksSeen,
             "a core parked inside an execution window (the FIFO "
             "slack bound must prevent overflow)");
    for (std::size_t i = 0; i < lanes.size(); ++i)
        rs.calendar.set(lanes[i], lane_edges[i]);
}

void
ContestSystem::runWindowed(RunState &rs, unsigned jobs)
{
    buildWindowIndexes();
    rs.capTicks = std::max<std::uint64_t>(
        1, std::min(cfg.initialWindowTicks, cfg.maxWindowTicks));
    rs.burstLen = std::max<std::uint64_t>(1, cfg.seqBurstTicks);
    const std::uint64_t max_burst =
        std::max(rs.burstLen, cfg.maxSeqBurstTicks);
    // Worker threads come from the process-wide lease shared with
    // the suite-level pool; whatever is granted — possibly nothing,
    // the group then runs every lane inline — the schedule and the
    // results are identical, only wall-clock changes.
    const unsigned lanes_wanted = std::min(
        jobs, static_cast<unsigned>(cores.size()));
    const unsigned granted = acquireContestWorkers(lanes_wanted - 1);
    {
        ContestWorkerGroup group(granted);
        while (!rs.finished) {
            const WindowAttempt att = executeWindow(rs, group);
            if (att == WindowAttempt::Ran) {
                // The window committed cleanly: double the quantum
                // toward the cap (amortizing the horizon + commit
                // overhead over larger inert spans) and re-arm the
                // hysteresis burst at its floor.
                if (rs.capTicks < cfg.maxWindowTicks) {
                    rs.capTicks = std::min(rs.capTicks * 2,
                                           cfg.maxWindowTicks);
                    ++winStats_.capGrowths;
                }
                rs.burstLen =
                    std::max<std::uint64_t>(1, cfg.seqBurstTicks);
                continue;
            }
            const auto t_seq = std::chrono::steady_clock::now();
            if (att == WindowAttempt::SeqOnly) {
                // Inherently sequential (due interrupt or all-parked
                // panic): a single step, no hysteresis — the next
                // attempt may well open a long window.
                seqStep(rs);
                ++winStats_.seqSteps;
            } else {
                // Degenerate horizon: the timeline is actively
                // entangled right now, and computing a horizon per
                // step is exactly the overhead that made windowing a
                // net loss. Run a burst of sequential steps before
                // the next attempt, doubling the burst while
                // attempts keep failing.
                for (std::uint64_t i = 0;
                     i < rs.burstLen && !rs.finished; ++i) {
                    seqStep(rs);
                    ++winStats_.seqSteps;
                    ++winStats_.burstSteps;
                }
                rs.burstLen = std::min(rs.burstLen * 2, max_burst);
            }
            winStats_.oracleSec += secondsSince(t_seq);
        }
    }
    releaseContestWorkers(granted);
    winStats_.finalCapTicks = rs.capTicks;
#ifdef CONTEST_CHECK_WINDOWS
    inform("shadow access log: %llu window(s) verified, %llu "
           "access(es) checked, zero cross-lane write conflicts",
           static_cast<unsigned long long>(
               shadowLog_.windowsVerified()),
           static_cast<unsigned long long>(
               shadowLog_.accessesChecked()));
#endif
}

ContestResult
ContestSystem::run(unsigned contest_jobs)
{
    const auto n = static_cast<CoreId>(cores.size());

    // The event calendar orders clock edges by (time, core id), so
    // ties go to the lower core id — the same deterministic choice
    // the old linear min-scan made (the paper's round-robin
    // handshake order).
    RunState rs(n);
    rs.noSkip = simNoSkip();
    rs.parksSeen = parkEvents;
    rs.nextInterrupt = cfg.interruptPeriodPs;
    for (CoreId c = 0; c < n; ++c)
        rs.calendar.set(c, TimePs{});
    winStats_ = WindowStats{};

    const unsigned jobs =
        contest_jobs != 0 ? contest_jobs : contestJobs();
    if (jobs > 1 && n > 1) {
        runWindowed(rs, jobs);
    } else {
        while (!rs.finished)
            seqStep(rs);
    }
    return collectResult(rs);
}

ContestResult
ContestSystem::collectResult(const RunState &rs)
{
    const auto n = static_cast<CoreId>(cores.size());
    ContestResult result;
    result.timePs = rs.finishTime;
    result.ipt = instPerNs(trace->endSeq(), rs.finishTime);
    for (CoreId c = 0; c < n; ++c) {
        result.coreStats.push_back(cores[c]->stats());
        result.unitStats.push_back(units[c]->stats());
        result.leadFraction.push_back(
            static_cast<double>(leadCounts[c])
            / static_cast<double>(trace->size()));

        // A parked core stops burning static power when it leaves
        // contesting mode.
        TimePs powered = units[c]->stats().saturated
            ? units[c]->stats().parkedAt
            : rs.finishTime;
        ActivityCounts activity = baseActivity(*cores[c]);
        activity.grbBroadcasts = units[c]->stats().broadcasts;
        activity.injections = cores[c]->stats().injected;
        result.energy.push_back(
            estimateEnergy(configs[c], cores[c]->stats(), activity,
                           powered));
    }
    result.leadChanges = leadChanges;
    result.mergedStores = storeQ->mergedCount();
    result.exceptionsHandled = excCoord->handled();
    result.interruptsHandled = interrupts;

    inform("contest finished: core %u ('%s') first at %.1f ns, "
           "IPT %.3f, %llu lead changes",
           rs.finisher, configs[rs.finisher].name.c_str(),
           static_cast<double>(rs.finishTime) / psPerNs, result.ipt,
           static_cast<unsigned long long>(leadChanges));
    return result;
}

SingleRunResult
runSingle(const CoreConfig &config, TracePtr trace)
{
    fatal_if(!trace || trace->empty(),
             "runSingle needs a non-empty trace");
    OooCore core(config, trace);
    const bool no_skip = simNoSkip();
    const std::uint64_t step = core.periodPs().count();
    TimePs t{};
    while (!core.done()) {
        core.tick(t);
        std::uint64_t ticks = 1;
        if (!no_skip && !core.done())
            ticks += core.skipIdleCycles(Cycles::max()).count();
        t += TimePs{step * ticks};
    }
    SingleRunResult r;
    r.timePs = t;
    r.ipt = instPerNs(trace->endSeq(), t);
    r.stats = core.stats();
    r.energy = estimateEnergy(config, core.stats(), baseActivity(core),
                              t);
    return r;
}

ActivityCounts
baseActivity(const OooCore &core)
{
    ActivityCounts activity;
    activity.l1Accesses = core.memory().l1().accesses();
    activity.l1Misses = core.memory().l1().misses();
    activity.l2Accesses = core.memory().l2().accesses();
    activity.l2Misses = core.memory().l2().misses();
    return activity;
}

} // namespace contest
