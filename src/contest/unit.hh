/**
 * @file
 * Per-core contesting unit: pop counters, fetch-counter pairing,
 * late-result discarding, early branch resolution, store-merge and
 * exception bridging (paper Sections 4.1-4.3).
 *
 * One unit is attached to each core through the ContestHooks
 * interface. Because the core model is trace driven (only correct
 * path instructions are fetched), the core's fetch stream position
 * *is* the paper's checkpoint-restored fetch counter: wrong-path
 * over-counting and its checkpoint/restore never materialize, and
 * the Scenario #1 / #2 comparison reduces to comparing the fetch
 * position against each FIFO's pop counter.
 */

#ifndef CONTEST_CONTEST_UNIT_HH
#define CONTEST_CONTEST_UNIT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/soa.hh"
#include "contest/config.hh"
#include "contest/result_fifo.hh"
#include "core/contest_iface.hh"

namespace contest
{

class ContestSystem;

/** Statistics specific to the contesting unit. */
struct UnitStats
{
    std::uint64_t paired = 0;      //!< results paired with fetches
    std::uint64_t discarded = 0;   //!< late results dropped
    std::uint64_t broadcasts = 0;  //!< results sent on the GRB
    bool saturated = false;        //!< parked as a saturated lagger
    TimePs parkedAt{};
};

/** ContestHooks implementation backing one core. */
class CoreContestUnit : public ContestHooks, public WindowPhased
{
  public:
    /**
     * @param self this core's id within the system
     * @param contest_config shared contesting configuration
     * @param owner the system providing GRB routing, the store
     *              queue and the exception coordinator
     * @param num_cores total cores in the system
     */
    CoreContestUnit(CoreId self, const ContestConfig &contest_config,
                    ContestSystem *owner, unsigned num_cores);

    /** @name ContestHooks */
    /** @{ */
    FetchOutcome onFetch(InstSeq seq, TimePs now) override;
    std::optional<TimePs> externalBranchResolve(InstSeq seq,
                                                TimePs now) override;
    void confirmEarlyResolve(InstSeq seq, TimePs now) override;
    void onRetire(InstSeq seq, const TraceInst &inst,
                  TimePs now) override;
    bool storeCanCommit(TimePs now) override;
    void onStoreCommit(Addr addr, TimePs now) override;
    std::optional<TimePs> onSyscall(InstSeq seq, TimePs now) override;
    bool parked() const override { return stats_.saturated; }
    /** @} */

    /** @name WindowPhased (parallel windowed execution)
     *
     * Between beginWindow() and endWindow() the unit defers every
     * cross-core side effect: onRetire and onStoreCommit append to
     * the deferred-event log instead of broadcasting/performing, and
     * storeCanCommit answers true outright (the window bound
     * guarantees the store queue would have accepted). The unit also
     * remembers the (time, arg) of its latest own FIFO operation so
     * the commit phase can replay Scenario #1 discards of results
     * pushed "behind" it. onSyscall, receiveResult and parking are
     * impossible inside a window by construction and panic.
     */
    /** @{ */
    void beginWindow(TimePs horizon) override;
    void endWindow() override;
    /** @} */

    /** Record one executed tick (called by the window lane loop). */
    void recordTick(TimePs at, Cycles skipped);

    /**
     * Pre-reserve the window logs for at most @p ticks executed
     * ticks and @p events deferred events, so the lane loop performs
     * no heap allocation even before the buffers have grown to their
     * high-water mark (clear() already preserves capacity across
     * windows; this covers the first window at each new size).
     * Returns true when some log's capacity actually grew — the
     * steady-state allocation probe classifies such a window as
     * warm-up, since a new high-water mark is by definition not
     * steady state.
     */
    bool reserveWindowLogs(std::size_t ticks, std::size_t events);

    /** @name Last window's logs (structure-of-arrays)
     *
     * The tick log is three parallel arrays (global time, idle
     * cycles elided right after the tick, and the exclusive end of
     * this tick's slice of the event log); the deferred-event log is
     * an argument array (stream position for retires, effective
     * address for stores) plus an is-store mask word per 64 events.
     * The commit phase's k-way merge touches only the time array
     * until a tick actually wins, so a lane's whole log scan stays
     * within a few cachelines.
     */
    /** @{ */
    std::size_t windowTickCount() const { return winTickAt.size(); }
    TimePs windowTickAt(std::size_t i) const { return winTickAt[i]; }
    /** The packed tick-time array itself, for the commit merge's
     *  inner scan (valid until the next beginWindow/reserve). */
    const TimePs *windowTickData() const { return winTickAt.data(); }
    Cycles
    windowTickSkipped(std::size_t i) const
    {
        return winTickSkipped[i];
    }
    std::uint32_t
    windowTickEvEnd(std::size_t i) const
    {
        return winTickEvEnd[i];
    }
    bool
    windowEventIsStore(std::uint32_t e) const
    {
        return bitTest(winEvStoreW, e);
    }
    std::uint64_t
    windowEventArg(std::uint32_t e) const
    {
        return winEvArg[e];
    }
    /** @} */

    /**
     * Commit-phase delivery of one result core @p src retired inside
     * the window at edge (@p push_at, src). If an own FIFO operation
     * of this core ordered after that edge with a larger stream
     * position, the sequential schedule would have popped and
     * discarded the entry (Scenario #1) — replay that here.
     */
    void commitDeferredResult(CoreId src, InstSeq seq, TimePs arrival,
                              TimePs push_at);

    /** Buffered (including in-flight) entries from @p src; the
     *  window bound keeps a sender's pushes within this slack. */
    std::size_t fifoDepth(CoreId src) const
    {
        return fifos[src].size();
    }

    /**
     * A result from core @p src arrives on this core's incoming GRB
     * (arrival pre-delayed by the bus latency). Overflow makes this
     * core a saturated lagger.
     */
    void receiveResult(CoreId src, InstSeq seq, TimePs arrival);

    /** Unit statistics. */
    const UnitStats &stats() const { return stats_; }

    /** Maximum pop counter over all incoming FIFOs. */
    InstSeq maxPopCounter() const;

    /** Pop counter of the incoming FIFO fed by core @p src. */
    InstSeq popCounter(CoreId src) const { return fifos[src].headSeq(); }

    /** Late-bind the core this unit serves (for its fetch counter). */
    void setCore(const OooCore *core_model) { core = core_model; }

    /** System-wide refork (asynchronous interrupt): every FIFO is
     *  emptied and its pop counter moved to the refork position. */
    void reforkTo(InstSeq seq);

  private:
    void park(TimePs now);

    /** Remember an own FIFO operation (in-window only). */
    void noteWindowOp(InstSeq seq, TimePs now);

    CoreId self;
    const ContestConfig &cfg;
    ContestSystem *sys;
    /** Fault injection for the shadow checker's own death test:
     *  when set (CONTEST_CHECK_WINDOWS builds reading the
     *  CONTEST_CHECK_WINDOWS_INJECT env knob in the constructor —
     *  a member, not a function-local static, so gtest death tests
     *  see it in the forked child), onStoreCommit skips the
     *  in-window deferral and performs the store live, which the
     *  shadow log must report as a cross-lane write. */
    bool injectInWindowStores = false;
    const OooCore *core = nullptr;
    /** Incoming FIFOs indexed by source core id (self unused). */
    std::vector<ResultFifo> fifos;
    UnitStats stats_;
    /** Source core whose result won the last externalBranchResolve,
     *  armed until the core confirms (or the unit parks/reforks).
     *  confirmEarlyResolve must pop exactly this FIFO: another
     *  source may hold the same head seq with a later (or still
     *  in-flight) arrival, and popping it would credit a result the
     *  core never saw. */
    std::optional<CoreId> earlyResolveSrc;
    InstSeq earlyResolveSeq{};
    /** @name Branch-resolve poll memo
     *
     * The core polls externalBranchResolve every cycle it is stalled
     * on a branch, but the answer only changes when some FIFO
     * changes: between polls the scan is idempotent (the first poll
     * performed every discard, and arrival times are fixed at push).
     * fifoGen counts FIFO mutations; a poll for the same seq at the
     * same generation replays the remembered answer without
     * rescanning.
     */
    /** @{ */
    std::uint64_t fifoGen = 0;
    std::uint64_t pollGen = ~std::uint64_t{0};
    InstSeq pollSeq{};
    std::optional<TimePs> pollBest;
    std::optional<CoreId> pollBestSrc;
    /** @} */

    /** Append one deferred cross-core event (in-window only). */
    void appendWindowEvent(bool is_store, std::uint64_t arg);

    /** @name Window-deferred state (valid while inWindow and, for
     *  the logs, until the next beginWindow) */
    /** @{ */
    bool inWindow = false;
    SoaVec<TimePs> winTickAt;
    SoaVec<Cycles> winTickSkipped;
    SoaVec<std::uint32_t> winTickEvEnd;
    SoaVec<std::uint64_t> winEvArg;
    SoaVec<std::uint64_t> winEvStoreW;
    /** Latest own FIFO operation (onFetch / externalBranchResolve)
     *  in the window: its global time and stream position. Hook args
     *  never sink below their window-entry floor, so one record
     *  decides every deferred Scenario #1 discard. */
    bool lastOpValid = false;
    TimePs lastOpAt{};
    InstSeq lastOpArg{};
    /** @} */
};

} // namespace contest

#endif // CONTEST_CONTEST_UNIT_HH
