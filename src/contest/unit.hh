/**
 * @file
 * Per-core contesting unit: pop counters, fetch-counter pairing,
 * late-result discarding, early branch resolution, store-merge and
 * exception bridging (paper Sections 4.1-4.3).
 *
 * One unit is attached to each core through the ContestHooks
 * interface. Because the core model is trace driven (only correct
 * path instructions are fetched), the core's fetch stream position
 * *is* the paper's checkpoint-restored fetch counter: wrong-path
 * over-counting and its checkpoint/restore never materialize, and
 * the Scenario #1 / #2 comparison reduces to comparing the fetch
 * position against each FIFO's pop counter.
 */

#ifndef CONTEST_CONTEST_UNIT_HH
#define CONTEST_CONTEST_UNIT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "contest/config.hh"
#include "contest/result_fifo.hh"
#include "core/contest_iface.hh"

namespace contest
{

class ContestSystem;

/** Statistics specific to the contesting unit. */
struct UnitStats
{
    std::uint64_t paired = 0;      //!< results paired with fetches
    std::uint64_t discarded = 0;   //!< late results dropped
    std::uint64_t broadcasts = 0;  //!< results sent on the GRB
    bool saturated = false;        //!< parked as a saturated lagger
    TimePs parkedAt{};
};

/** ContestHooks implementation backing one core. */
class CoreContestUnit : public ContestHooks
{
  public:
    /**
     * @param self this core's id within the system
     * @param contest_config shared contesting configuration
     * @param owner the system providing GRB routing, the store
     *              queue and the exception coordinator
     * @param num_cores total cores in the system
     */
    CoreContestUnit(CoreId self, const ContestConfig &contest_config,
                    ContestSystem *owner, unsigned num_cores);

    /** @name ContestHooks */
    /** @{ */
    FetchOutcome onFetch(InstSeq seq, TimePs now) override;
    std::optional<TimePs> externalBranchResolve(InstSeq seq,
                                                TimePs now) override;
    void confirmEarlyResolve(InstSeq seq, TimePs now) override;
    void onRetire(InstSeq seq, const TraceInst &inst,
                  TimePs now) override;
    bool storeCanCommit(TimePs now) override;
    void onStoreCommit(Addr addr, TimePs now) override;
    std::optional<TimePs> onSyscall(InstSeq seq, TimePs now) override;
    bool parked() const override { return stats_.saturated; }
    /** @} */

    /**
     * A result from core @p src arrives on this core's incoming GRB
     * (arrival pre-delayed by the bus latency). Overflow makes this
     * core a saturated lagger.
     */
    void receiveResult(CoreId src, InstSeq seq, TimePs arrival);

    /** Unit statistics. */
    const UnitStats &stats() const { return stats_; }

    /** Maximum pop counter over all incoming FIFOs. */
    InstSeq maxPopCounter() const;

    /** Pop counter of the incoming FIFO fed by core @p src. */
    InstSeq popCounter(CoreId src) const { return fifos[src].headSeq(); }

    /** Late-bind the core this unit serves (for its fetch counter). */
    void setCore(const OooCore *core_model) { core = core_model; }

    /** System-wide refork (asynchronous interrupt): every FIFO is
     *  emptied and its pop counter moved to the refork position. */
    void reforkTo(InstSeq seq);

  private:
    void park(TimePs now);

    CoreId self;
    const ContestConfig &cfg;
    ContestSystem *sys;
    const OooCore *core = nullptr;
    /** Incoming FIFOs indexed by source core id (self unused). */
    std::vector<ResultFifo> fifos;
    UnitStats stats_;
    /** Source core whose result won the last externalBranchResolve,
     *  armed until the core confirms (or the unit parks/reforks).
     *  confirmEarlyResolve must pop exactly this FIFO: another
     *  source may hold the same head seq with a later (or still
     *  in-flight) arrival, and popping it would credit a result the
     *  core never saw. */
    std::optional<CoreId> earlyResolveSrc;
    InstSeq earlyResolveSeq{};
};

} // namespace contest

#endif // CONTEST_CONTEST_UNIT_HH
