/**
 * @file
 * Counters describing how one windowed contested run spent its time
 * (DESIGN.md §14). The scheduler's decisions — window sizes, cap
 * growth, degenerate fallbacks, hysteresis bursts — are a function of
 * the simulated timeline only, so every counter here is identical
 * across worker counts; only the wall-clock split changes. That is
 * what makes the block a committable artifact: a perf regression in
 * the schedule shows up as a counter diff, not a noisy timing diff.
 */

#ifndef CONTEST_CONTEST_WINDOW_STATS_HH
#define CONTEST_CONTEST_WINDOW_STATS_HH

#include <bit>
#include <cstdint>

namespace contest
{

/** Per-run window-scheduling counters and wall-time split. */
struct WindowStats
{
    /** log2 histogram buckets for per-window tick counts: bucket b
     *  holds windows with bit_width(ticks) == b, i.e. ticks in
     *  [2^(b-1), 2^b); the last bucket absorbs everything larger. */
    static constexpr unsigned kHistBuckets = 21;

    /** Windows successfully executed and committed. */
    std::uint64_t windows = 0;
    /** Core ticks executed inside windows (summed over lanes). */
    std::uint64_t windowTicks = 0;
    /** Lane executions (one per core with an edge inside a window). */
    std::uint64_t laneRuns = 0;
    /** Sequential oracle steps taken outside windows. */
    std::uint64_t seqSteps = 0;  // contest-lint: allow(bare-u64-quantity)
    /** Subset of seqSteps taken inside hysteresis bursts. */
    std::uint64_t burstSteps = 0;
    /** Window attempts whose horizon was degenerate (W1 <= t0). */
    std::uint64_t degenerateFallbacks = 0;
    /** Window attempts skipped without computing a horizon because
     *  the step is inherently sequential (due interrupt, empty
     *  calendar). */
    std::uint64_t seqRequiredFallbacks = 0;  // contest-lint: allow(bare-u64-quantity)
    /** Times the adaptive per-window tick cap doubled. */
    std::uint64_t capGrowths = 0;
    /** The adaptive cap's value when the run finished. */
    std::uint64_t finalCapTicks = 0;
    /** Horizon terms recomputed vs. reused from the signature cache. */
    std::uint64_t horizonRecomputes = 0;
    std::uint64_t horizonReuses = 0;

    /** Histogram of committed window lengths in ticks (see above). */
    std::uint64_t ticksHist[kHistBuckets] = {};

    /** @name Wall-clock split (seconds); the only fields that vary
     *  with the worker count. */
    /** @{ */
    double oracleSec = 0.0;  //!< sequential steps (incl. bursts)
    double horizonSec = 0.0; //!< windowHorizon computation
    double laneSec = 0.0;    //!< parallel lane execution (dispatch
                             //!< to last lane done, owner's view)
    double commitSec = 0.0;  //!< deferred-event replay + calendar
    /** @} */

    /** @name Steady-state allocation probe (test hook; zero unless a
     *  probe was armed via ContestSystem::setAllocProbe). */
    /** @{ */
    std::uint64_t steadyWindows = 0; //!< windows probed after warmup
    std::uint64_t steadyAllocs = 0;  //!< heap allocations they made
    /** @} */

    /** Whether this run took the windowed path at all. */
    bool active() const { return windows + degenerateFallbacks > 0; }

    /** Histogram bucket for a window of @p ticks ticks. */
    static unsigned
    bucketOf(std::uint64_t ticks)
    {
        unsigned b = static_cast<unsigned>(std::bit_width(ticks));
        return b < kHistBuckets ? b : kHistBuckets - 1;
    }

    void
    recordWindow(std::uint64_t ticks, std::uint64_t lanes)
    {
        ++windows;
        windowTicks += ticks;
        laneRuns += lanes;
        ++ticksHist[bucketOf(ticks)];
    }

    /** Mean committed window length in ticks (0 when no windows). */
    double
    meanWindowTicks() const
    {
        return windows ? static_cast<double>(windowTicks)
                             / static_cast<double>(windows)
                       : 0.0;
    }
};

} // namespace contest

#endif // CONTEST_CONTEST_WINDOW_STATS_HH
