/**
 * @file
 * Set-associative cache tag model with true-LRU replacement.
 *
 * The simulator models hit/miss behaviour and latency; data values
 * are abstract (the traces carry no values). Bandwidth is modeled
 * only through the port counts in the core model, not here.
 */

#ifndef CONTEST_MEM_CACHE_HH
#define CONTEST_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    unsigned sets = 1024;       //!< number of sets (power of two)
    unsigned assoc = 2;         //!< ways per set
    unsigned blockBytes = 64;   //!< line size (power of two)
    Cycles latency{2};         //!< access latency in core cycles
    bool writeThrough = false;  //!< write-through (no dirty lines)
    bool writeAllocate = true;  //!< allocate on write miss

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t{sets} * assoc * blockBytes;
    }
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted to make room (write-back mode). */
    bool dirtyEviction = false;
};

/** One level of set-associative cache with LRU replacement. */
class Cache
{
  public:
    /** Validate the config and build the tag array. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access the cache, updating tags, LRU state and statistics.
     *
     * @param addr byte address
     * @param is_write true for stores
     * @return hit/miss and eviction information
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Probe without updating any state: would this address hit? */
    bool probe(Addr addr) const;

    /** Drop every line (used when a core leaves contesting mode). */
    void invalidateAll();

    /**
     * Switch the write policy at run time. Contesting mode requires
     * write-through private caches (Section 4.2); dirty lines are
     * conceptually flushed on the transition, which the tag model
     * represents by clearing dirty bits.
     */
    void setWriteThrough(bool enable);

    /** The active configuration. */
    const CacheConfig &config() const { return cfg; }

    /** @name Statistics */
    /** @{ */
    std::uint64_t accesses() const { return numAccesses; }
    std::uint64_t misses() const { return numMisses; }
    double
    missRate() const
    {
        return numAccesses
            ? static_cast<double>(numMisses)
                / static_cast<double>(numAccesses)
            : 0.0;
    }
    /** @} */

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    std::vector<Line> lines;
    unsigned blockShift;
    std::uint64_t useClock = 0;
    std::uint64_t numAccesses = 0;
    std::uint64_t numMisses = 0;
};

} // namespace contest

#endif // CONTEST_MEM_CACHE_HH
