#include "mem/hierarchy.hh"

#include <algorithm>

namespace contest
{

DataHierarchy::DataHierarchy(const CacheConfig &l1_config,
                             const CacheConfig &l2_config,
                             Cycles memory_latency,
                             Cycles load_fill_gap, Cycles store_gap)
    : l1Cache(l1_config), l2Cache(l2_config),
      memLatency(memory_latency), loadGap(load_fill_gap),
      storeGap(store_gap)
{}

MemAccessResult
DataHierarchy::access(Addr addr, bool is_write, Cycles now)
{
    MemAccessResult result;
    result.latency = l1Cache.config().latency;

    auto l1 = l1Cache.access(addr, is_write);
    if (l1.hit) {
        result.level = MemLevel::L1;
        // A write-through store is also propagated to L2 tags so the
        // private levels stay inclusive of each other's updates; its
        // latency is hidden by the store buffer.
        if (is_write && l1Cache.config().writeThrough)
            l2Cache.access(addr, true);
        return result;
    }

    result.latency += l2Cache.config().latency;
    auto l2 = l2Cache.access(addr, is_write);
    if (l2.hit) {
        result.level = MemLevel::L2;
        return result;
    }

    // Shared-level access: acquire a bus slot, then pay the fixed
    // latency. Loads occupy the bus for a block transfer, stores for
    // a buffered word drain.
    result.level = MemLevel::Memory;
    Cycles slot_start = std::max(now, busFree);
    Cycles queue_delay = slot_start - now;
    busFree = slot_start + (is_write ? storeGap : loadGap);
    result.latency += queue_delay + memLatency;
    return result;
}

Cycles
DataHierarchy::instrFill(Addr addr, Cycles now)
{
    auto l2 = l2Cache.access(addr, false);
    if (l2.hit)
        return l2Cache.config().latency;
    Cycles slot_start = std::max(now, busFree);
    Cycles queue_delay = slot_start - now;
    busFree = slot_start + loadGap;
    return l2Cache.config().latency + queue_delay + memLatency;
}

void
DataHierarchy::setWriteThrough(bool enable)
{
    l1Cache.setWriteThrough(enable);
    l2Cache.setWriteThrough(enable);
}

void
DataHierarchy::invalidateAll()
{
    l1Cache.invalidateAll();
    l2Cache.invalidateAll();
}

} // namespace contest
