/**
 * @file
 * A core's private data-memory hierarchy: L1D and L2 caches in front
 * of a fixed-latency, bandwidth-limited shared level (main memory in
 * the paper's Appendix A parameterization).
 *
 * Bandwidth is modeled as a minimum gap between consecutive
 * shared-level fills: a load miss occupies the memory bus for the
 * time it takes to transfer one L2 block, a write-through store for
 * the time of one word. Queuing delay is added to the access
 * latency, which is what makes streaming workloads reward large
 * blocks and resident working sets reward large L2s even when MSHRs
 * would otherwise hide all latency.
 */

#ifndef CONTEST_MEM_HIERARCHY_HH
#define CONTEST_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace contest
{

/** Which level serviced an access. */
enum class MemLevel : std::uint8_t { L1, L2, Memory };

/** Outcome of a data access through the private hierarchy. */
struct MemAccessResult
{
    Cycles latency{};    //!< total latency in core cycles
    MemLevel level = MemLevel::L1;
};

/** Private L1D + L2 in front of a fixed-latency shared level. */
class DataHierarchy
{
  public:
    /**
     * @param l1_config L1 data cache geometry
     * @param l2_config private L2 geometry
     * @param memory_latency shared-level latency in core cycles
     * @param load_fill_gap min cycles between block fills (bandwidth)
     * @param store_gap min cycles between write-through word drains
     */
    DataHierarchy(const CacheConfig &l1_config,
                  const CacheConfig &l2_config, Cycles memory_latency,
                  Cycles load_fill_gap = Cycles{},
                  Cycles store_gap = Cycles{});

    /**
     * Perform a load or store at core cycle @p now, updating tags at
     * every level probed and booking memory-bus occupancy.
     *
     * @param addr byte address
     * @param is_write true for stores
     * @param now current core cycle (for bus queuing)
     * @return latency and the level that serviced the access
     */
    MemAccessResult access(Addr addr, bool is_write, Cycles now);

    /**
     * Fill one instruction block through the unified L2 after an
     * L1I miss (the L1I itself lives in the core's front end).
     *
     * @return additional cycles beyond the L1I latency
     */
    Cycles instrFill(Addr addr, Cycles now);

    /** Switch both private levels between write policies. */
    void setWriteThrough(bool enable);

    /** L1 data cache (for statistics). */
    const Cache &l1() const { return l1Cache; }

    /** Private L2 cache (for statistics). */
    const Cache &l2() const { return l2Cache; }

    /** Shared-level latency in core cycles. */
    Cycles memoryLatency() const { return memLatency; }

    /** Cycles the memory bus stays busy after the current booking. */
    Cycles busFreeAt() const { return busFree; }

    /** Drop all cached lines in both levels. */
    void invalidateAll();

  private:
    Cache l1Cache;
    Cache l2Cache;
    Cycles memLatency;
    Cycles loadGap;
    Cycles storeGap;
    Cycles busFree{};
};

} // namespace contest

#endif // CONTEST_MEM_HIERARCHY_HH
