#include "mem/sync_store_queue.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace contest
{

SyncStoreQueue::SyncStoreQueue(unsigned num_cores,
                               std::size_t queue_capacity)
    : cap(queue_capacity), performed(num_cores, StoreSeq{}),
      active(num_cores, true)
{
    fatal_if(num_cores == 0, "SyncStoreQueue needs at least one core");
    fatal_if(queue_capacity == 0,
             "SyncStoreQueue capacity must be non-zero");
    pendingAddrs.resize(cap, 0);
}

bool
SyncStoreQueue::canAccept(CoreId core) const
{
    panic_if(core >= performed.size(),
             "SyncStoreQueue: core %u out of range", core);
    // The merge frontier is the minimum over *active* cores, so an
    // inactive core's performed count can trail numMerged and the
    // unsigned difference below would wrap to a huge value. Dropped
    // cores never commit stores; querying one is a caller bug.
    panic_if(!active[core],
             "SyncStoreQueue: inactive core %u queried canAccept",
             core);
    return (performed[core] - numMerged).count() < cap;
}

void
SyncStoreQueue::performStore(CoreId core, Addr addr)
{
    panic_if(core >= performed.size(),
             "SyncStoreQueue: core %u out of range", core);
    panic_if(!active[core],
             "SyncStoreQueue: dropped core %u performed a store", core);
    panic_if(!canAccept(core),
             "SyncStoreQueue: core %u overflowed the queue", core);

    StoreSeq index = performed[core];
    panic_if(index < numMerged,
             "SyncStoreQueue: core %u behind the merge frontier", core);

    std::size_t offset =
        static_cast<std::size_t>((index - pendingBase).count());
    if (offset == pendingCount) {
        // First core to reach this store: record its address. The
        // canAccept panic above keeps the un-merged span below cap,
        // so the slot is free.
        pendingAddrs[(pendingHead + offset) % cap] = addr;
        ++pendingCount;
    } else {
        panic_if(offset > pendingCount,
                 "SyncStoreQueue: core %u skipped a store", core);
        const Addr seen = pendingAddrs[(pendingHead + offset) % cap];
        panic_if(seen != addr,
                 "SyncStoreQueue: redundant store streams diverge at "
                 "store %llu (0x%llx vs 0x%llx)",
                 static_cast<unsigned long long>(index.count()),
                 static_cast<unsigned long long>(seen),
                 static_cast<unsigned long long>(addr));
    }

    ++performed[core];
    tryMerge();
}

void
SyncStoreQueue::dropCore(CoreId core)
{
    panic_if(core >= active.size(),
             "SyncStoreQueue: core %u out of range", core);
    if (!active[core])
        return;
    active[core] = false;
    tryMerge();
}

void
SyncStoreQueue::reforkAll(StoreSeq store_count)
{
    panic_if(store_count < numMerged,
             "SyncStoreQueue: refork point %llu precedes the merge "
             "frontier %llu",
             static_cast<unsigned long long>(store_count.count()),
             static_cast<unsigned long long>(numMerged.count()));
    for (std::size_t c = 0; c < performed.size(); ++c)
        if (active[c])
            performed[c] = store_count;
    // Stores recorded beyond the refork point stay buffered: the
    // re-executed instances re-verify against them.
    tryMerge();
}

StoreSeq
SyncStoreQueue::performedBy(CoreId core) const
{
    panic_if(core >= performed.size(),
             "SyncStoreQueue: core %u out of range", core);
    return performed[core];
}

std::vector<MergedStore>
SyncStoreQueue::drainMerged()
{
    return std::exchange(mergedSinceDrain, {});
}

void
SyncStoreQueue::tryMerge()
{
    // The merge frontier is the minimum progress over active cores.
    StoreSeq frontier = StoreSeq::max();
    bool any_active = false;
    for (std::size_t c = 0; c < performed.size(); ++c) {
        if (active[c]) {
            any_active = true;
            frontier = std::min(frontier, performed[c]);
        }
    }
    if (!any_active)
        return;

    while (numMerged < frontier) {
        panic_if(pendingCount == 0,
                 "SyncStoreQueue: merge frontier beyond recorded stores");
        if (recordMerged)
            mergedSinceDrain.push_back(
                MergedStore{numMerged, pendingAddrs[pendingHead]});
        pendingHead = (pendingHead + 1) % cap;
        --pendingCount;
        ++pendingBase;
        ++numMerged;
    }
}

} // namespace contest
