/**
 * @file
 * SRT-style synchronizing store queue for contested execution
 * (paper Section 4.2).
 *
 * Every contesting core performs each store redundantly in its
 * private (write-through) cache levels, but stores stop short of the
 * shared level. The synchronizing store queue buffers each store and
 * tracks which cores have privately performed it; once the *oldest*
 * store has been performed by all participating cores, a single
 * merged instance is released to the shared level.
 *
 * Because every core retires the same dynamic instruction stream in
 * order, a core's progress is fully described by a single counter of
 * performed stores, and the merged frontier is the minimum over the
 * participating cores. The queue also bounds how far the leader may
 * run ahead: when the distance between the leader's performed count
 * and the merged frontier reaches the capacity, the leader's stores
 * stall — the physical mechanism that bounds lagging distance.
 */

#ifndef CONTEST_MEM_SYNC_STORE_QUEUE_HH
#define CONTEST_MEM_SYNC_STORE_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** One store released to the shared level. */
struct MergedStore
{
    StoreSeq index{};  //!< 0-based position in the store stream
    Addr addr = 0;
};

/** Synchronizing store queue shared by all contesting cores. */
class SyncStoreQueue
{
  public:
    /**
     * @param num_cores number of participating cores
     * @param queue_capacity max un-merged stores buffered per core
     */
    SyncStoreQueue(unsigned num_cores, std::size_t queue_capacity);

    /**
     * Would a store from this core be accepted right now? The
     * leader's stores stall when its un-merged backlog reaches the
     * queue capacity.
     */
    bool canAccept(CoreId core) const;

    /**
     * Core @p core performs its next store (in program order) to
     * @p addr. The address is recorded the first time the store is
     * seen and verified on every subsequent instance: divergence
     * means the redundant streams disagree, which is a simulator
     * invariant violation.
     */
    void performStore(CoreId core, Addr addr);

    /**
     * A core stops participating (e.g. a saturated lagger disabling
     * contesting mode): its counter no longer holds back merging.
     */
    void dropCore(CoreId core);

    /**
     * System-wide refork after an asynchronous interrupt: every
     * active core resumes the store stream at position
     * @p store_count (the number of stores preceding the refork
     * point). Must not precede the merge frontier.
     */
    void reforkAll(StoreSeq store_count);

    /** Number of stores performed so far by the given core. */
    StoreSeq performedBy(CoreId core) const;

    /** Number of merged stores released to the shared level. */
    StoreSeq mergedCount() const { return numMerged; }

    /**
     * Record merged stores for later drainMerged() retrieval. Off by
     * default: recording grows an unbounded log that nothing in a
     * normal contested run ever drains, and it would put a heap
     * allocation on the windowed commit path. Tests that verify the
     * merged stream switch it on before running.
     */
    void setRecordMerged(bool record) { recordMerged = record; }

    /**
     * Drain and return stores merged since the last call (the shared
     * level consumes these; tests verify the stream). Only populated
     * while setRecordMerged(true) is in effect.
     */
    std::vector<MergedStore> drainMerged();

    /** Queue capacity per core. */
    std::size_t capacity() const { return cap; }

  private:
    void tryMerge();

    std::size_t cap;
    std::vector<StoreSeq> performed;
    std::vector<bool> active;
    /**
     * Addresses of stores seen but not yet merged: a ring of
     * exactly @p cap slots, allocated once at construction. The
     * un-merged span is bounded by the capacity (canAccept stalls
     * the leader at cap outstanding), so the ring never wraps onto
     * live entries and performStore never allocates.
     */
    std::vector<Addr> pendingAddrs;
    /** Ring slot holding the oldest un-merged store. */
    std::size_t pendingHead = 0;
    /** Un-merged stores currently buffered. */
    std::size_t pendingCount = 0;
    /** Stream index of the oldest un-merged store. */
    StoreSeq pendingBase{};
    StoreSeq numMerged{};
    bool recordMerged = false;
    std::vector<MergedStore> mergedSinceDrain;
};

} // namespace contest

#endif // CONTEST_MEM_SYNC_STORE_QUEUE_HH
