#include "mem/cache.hh"

#include <bit>

#include "common/log.hh"

namespace contest
{

Cache::Cache(const CacheConfig &config)
    : cfg(config)
{
    fatal_if(cfg.sets == 0 || (cfg.sets & (cfg.sets - 1)) != 0,
             "cache sets must be a non-zero power of two (got %u)",
             cfg.sets);
    fatal_if(cfg.assoc == 0, "cache associativity must be non-zero");
    fatal_if(cfg.blockBytes == 0
                 || (cfg.blockBytes & (cfg.blockBytes - 1)) != 0,
             "cache block size must be a non-zero power of two (got %u)",
             cfg.blockBytes);
    blockShift =
        static_cast<unsigned>(std::countr_zero(cfg.blockBytes));
    lines.assign(std::size_t{cfg.sets} * cfg.assoc, Line{});
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> blockShift) & (cfg.sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> blockShift;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    ++numAccesses;
    ++useClock;

    CacheAccessResult result;
    Addr tag = tagOf(addr);
    Line *base = &lines[setIndex(addr) * cfg.assoc];

    Line *victim = &base[0];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            result.hit = true;
            line.lastUse = useClock;
            if (is_write && !cfg.writeThrough)
                line.dirty = true;
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++numMisses;

    // Write misses allocate only under write-allocate; a
    // non-allocating write goes straight to the next level.
    if (is_write && !cfg.writeAllocate)
        return result;

    if (victim->valid && victim->dirty)
        result.dirtyEviction = true;
    victim->valid = true;
    victim->dirty = is_write && !cfg.writeThrough;
    victim->tag = tag;
    victim->lastUse = useClock;
    return result;
}

bool
Cache::probe(Addr addr) const
{
    Addr tag = tagOf(addr);
    const Line *base = &lines[setIndex(addr) * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::setWriteThrough(bool enable)
{
    cfg.writeThrough = enable;
    if (enable)
        for (auto &line : lines)
            line.dirty = false;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace contest
