#include "sched/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace contest
{

SchedResult
simulateLoad(const IptMatrix &matrix, const CmpDesign &design,
             const SchedConfig &config)
{
    fatal_if(design.cores.empty(), "simulateLoad: empty design");
    fatal_if(config.totalCores < design.cores.size(),
             "simulateLoad: %u cores cannot host %zu core types",
             config.totalCores, design.cores.size());
    fatal_if(config.numJobs == 0, "simulateLoad: no jobs");

    // Build the core instances: divide the budget evenly over the
    // design's types, earlier types taking the remainder.
    struct CoreInstance
    {
        std::size_t typeColumn; //!< matrix column of the core type
        double freeAtNs = 0.0;
        double busyNs = 0.0;
    };
    std::vector<CoreInstance> cores;
    std::size_t num_types = design.cores.size();
    for (unsigned i = 0; i < config.totalCores; ++i)
        cores.push_back(CoreInstance{design.cores[i % num_types]});

    // Per-type earliest-free lookup for the preferred-type policy.
    auto earliest_of_type = [&](std::size_t column) {
        CoreInstance *best = nullptr;
        for (auto &core : cores)
            if (core.typeColumn == column
                && (best == nullptr
                    || core.freeAtNs < best->freeAtNs))
                best = &core;
        panic_if(best == nullptr, "no core of the requested type");
        return best;
    };

    Rng rng(config.seed);
    std::vector<double> turnarounds;
    std::vector<double> services;
    turnarounds.reserve(config.numJobs);
    SchedResult result;
    result.jobsPerType.assign(matrix.numCores(), 0);

    double now = 0.0;
    double makespan = 0.0;
    for (std::uint64_t j = 0; j < config.numJobs; ++j) {
        // Poisson arrivals, uniform job types (the paper's
        // assumptions; weights would model uneven submission).
        now += -config.meanInterarrivalNs
            * std::log(1.0 - rng.uniform());
        std::size_t bench = rng.below(matrix.numBenches());

        CoreInstance *core = nullptr;
        if (config.policy == SchedPolicy::PreferredType) {
            std::size_t pref =
                bestCoreFor(matrix, bench, design.cores);
            core = earliest_of_type(pref);
        } else {
            // Best available: minimize this job's completion time
            // over every instance.
            double best_end = 0.0;
            for (auto &cand : cores) {
                double service = config.jobInsts
                    / matrix.ipt[bench][cand.typeColumn];
                double end =
                    std::max(now, cand.freeAtNs) + service;
                if (core == nullptr || end < best_end) {
                    core = &cand;
                    best_end = end;
                }
            }
        }

        double service =
            config.jobInsts / matrix.ipt[bench][core->typeColumn];
        double start = std::max(now, core->freeAtNs);
        double end = start + service;
        core->freeAtNs = end;
        core->busyNs += service;
        makespan = std::max(makespan, end);

        turnarounds.push_back(end - now);
        services.push_back(service);
        ++result.jobsPerType[core->typeColumn];
    }

    double turn_sum = 0.0;
    double service_sum = 0.0;
    for (std::size_t i = 0; i < turnarounds.size(); ++i) {
        turn_sum += turnarounds[i];
        service_sum += services[i];
    }
    auto n = static_cast<double>(turnarounds.size());
    result.meanTurnaroundNs = turn_sum / n;
    result.meanServiceNs = service_sum / n;
    result.meanQueueNs =
        result.meanTurnaroundNs - result.meanServiceNs;

    std::sort(turnarounds.begin(), turnarounds.end());
    result.p95TurnaroundNs =
        turnarounds[static_cast<std::size_t>(0.95
                                             * (turnarounds.size()
                                                - 1))];

    for (const auto &core : cores)
        if (makespan > 0.0)
            result.maxUtilization = std::max(
                result.maxUtilization, core.busyNs / makespan);
    return result;
}

} // namespace contest
