/**
 * @file
 * Multiprogrammed-load scheduler simulation (paper Section 6.1).
 *
 * The contention-weighted harmonic-mean figure of merit is derived
 * from a queueing argument: under heavy load with jobs directed to
 * the core type they prefer, the number of job types sharing a core
 * type inflates its queue (Little's law). This module simulates
 * exactly that setting — stochastic job arrivals over a CMP with a
 * fixed number of cores of each type, a queue-at-preferred-type
 * scheduling policy, and per-job service times derived from the
 * measured IPT matrix — so the figure-of-merit reasoning can be
 * validated empirically rather than taken on faith.
 */

#ifndef CONTEST_SCHED_SCHEDULER_HH
#define CONTEST_SCHED_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "explore/cmp_design.hh"

namespace contest
{

/** How jobs are mapped to cores. */
enum class SchedPolicy
{
    /** Queue at the preferred core type even if it is busy (the
     *  policy the cw-har merit assumes). */
    PreferredType,
    /** Take the best *idle* core; queue globally if none is idle. */
    BestAvailable,
};

/** Configuration of one multiprogrammed-load simulation. */
struct SchedConfig
{
    /** Total cores in the CMP, divided evenly over the design's
     *  core types (remainders go to the earlier types). */
    unsigned totalCores = 4;
    /** Mean instructions per job. */
    double jobInsts = 10e6;
    /** Mean job inter-arrival time in nanoseconds (exponential). */
    double meanInterarrivalNs = 1000.0;
    /** Number of jobs to simulate. */
    std::uint64_t numJobs = 2000;
    /** Arrival-process seed. */
    std::uint64_t seed = 1;
    SchedPolicy policy = SchedPolicy::PreferredType;
};

/** Outcome of one simulation. */
struct SchedResult
{
    /** Mean job turnaround (queueing + service) in nanoseconds. */
    double meanTurnaroundNs = 0.0;
    /** 95th-percentile turnaround in nanoseconds. */
    double p95TurnaroundNs = 0.0;
    /** Mean service-only time (the no-contention floor). */
    double meanServiceNs = 0.0;
    /** Mean queueing delay in nanoseconds. */
    double meanQueueNs = 0.0;
    /** Utilization of the busiest core. */
    double maxUtilization = 0.0;
    /** Jobs whose preferred type had the longest queue share. */
    std::vector<std::uint64_t> jobsPerType;
};

/**
 * Simulate a stream of jobs over a CMP built from the given design.
 * Each arriving job is one of the matrix's benchmarks (uniform over
 * benchmarks, as the paper assumes); its service time on a core of
 * type c is jobInsts / ipt[bench][c] nanoseconds.
 */
SchedResult simulateLoad(const IptMatrix &matrix,
                         const CmpDesign &design,
                         const SchedConfig &config);

} // namespace contest

#endif // CONTEST_SCHED_SCHEDULER_HH
