/**
 * @file
 * Designing a constrained heterogeneous CMP (the paper's Section 6
 * methodology as a library): measure the benchmark-by-core IPT
 * matrix, score core-type combinations under the three figures of
 * merit, and compare the resulting designs with and without
 * contesting.
 *
 * Build & run:
 *   ./build/examples/design_cmp
 */

#include <cstdio>

#include "explore/cmp_design.hh"
#include "harness/runner.hh"

int
main()
{
    using namespace contest;

    // Short traces keep the example snappy; the bench binaries use
    // longer ones.
    Runner runner(/*trace_len=*/60'000, /*seed=*/2009);
    std::printf("measuring the 11x11 benchmark-by-core IPT matrix "
                "(121 simulations)...\n");
    const IptMatrix &m = runner.matrix();

    for (Merit merit : {Merit::Avg, Merit::Har, Merit::CwHar}) {
        auto design = designCmp(m, 2, merit, "HET");
        std::printf("best two-type design under %-6s: %-18s "
                    "(score %.3f, harmonic-mean IPT %.3f)\n",
                    meritName(merit),
                    designCoreNames(m, design).c_str(), design.score,
                    designHarmonicIpt(m, design));
    }

    auto hom = designHom(m, Merit::Avg, "HOM");
    auto het = designCmp(m, 2, Merit::CwHar, "HET-C");
    std::printf("\nHOM = %s (harmonic-mean IPT %.3f)\n",
                designCoreNames(m, hom).c_str(),
                designHarmonicIpt(m, hom));

    // Contest the chosen pair on every benchmark.
    std::printf("\ncontesting %s on every benchmark:\n",
                designCoreNames(m, het).c_str());
    const std::string a = m.coreNames[het.cores[0]];
    const std::string b = m.coreNames[het.cores[1]];
    double sum_no_contest = 0.0;
    double sum_contest = 0.0;
    for (std::size_t bench = 0; bench < m.numBenches(); ++bench) {
        double best = m.ipt[bench][bestCoreFor(m, bench, het.cores)];
        auto r = runner.contestedPair(m.benchNames[bench], a, b);
        sum_no_contest += 1.0 / best;
        sum_contest += 1.0 / r.ipt;
        std::printf("  %-7s best-of-two %.2f -> contested %.2f "
                    "(%+.1f%%)\n",
                    m.benchNames[bench].c_str(), best, r.ipt,
                    (r.ipt / best - 1.0) * 100.0);
    }
    double n = static_cast<double>(m.numBenches());
    std::printf("\nharmonic-mean IPT: best-of-two %.3f, contested "
                "%.3f, HOM %.3f\n",
                n / sum_no_contest, n / sum_contest,
                designHarmonicIpt(m, hom));
    std::printf("contesting turns the constrained design's deficit "
                "into a robust win — the paper's Section 7.1 "
                "conclusion.\n");
    return 0;
}
