/**
 * @file
 * Phase anatomy: why contesting works. Runs each behaviour
 * archetype standalone across the whole Appendix A palette and
 * prints the resulting IPT table — different archetypes crown
 * different cores, and since real workloads interleave archetypes
 * at sub-1000-instruction granularity, the best core changes far
 * too quickly for detect-decide-migrate schemes.
 *
 * Build & run:
 *   ./build/examples/phase_anatomy
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

int
main()
{
    using namespace contest;

    const PhaseKind kinds[] = {
        PhaseKind::IlpCompute,  PhaseKind::SerialChain,
        PhaseKind::PointerChase, PhaseKind::Streaming,
        PhaseKind::Branchy,     PhaseKind::HotLoop,
    };

    TextTable t("IPT of each canonical phase archetype on each "
                "Appendix A core type");
    std::vector<std::string> head{"archetype"};
    for (const auto &core : appendixAPalette())
        head.push_back(core.name);
    head.push_back("winner");
    t.header(head);

    for (PhaseKind kind : kinds) {
        BenchmarkProfile profile;
        profile.name = phaseKindName(kind);
        profile.syscallGap = 0;
        profile.phases = {
            PhaseSpec{PhaseParams::canonical(kind), 1.0}};
        TraceGenerator gen(profile, 2009);
        TracePtr trace = gen.generate(60'000);

        std::vector<std::string> cells{profile.name};
        double best = 0.0;
        std::string winner;
        for (const auto &core : appendixAPalette()) {
            double ipt = runSingle(core, trace).ipt;
            cells.push_back(TextTable::num(ipt));
            if (ipt > best) {
                best = ipt;
                winner = core.name;
            }
        }
        cells.push_back(winner);
        t.row(cells);
    }
    t.print();

    std::printf(
        "\nEach archetype crowns a different core type; benchmarks "
        "interleave archetypes every few hundred instructions "
        "(e.g. twolf: %llu phase changes in 100k instructions), so "
        "only a scheme that switches at that rate — contesting — "
        "can collect the wins.\n",
        static_cast<unsigned long long>(
            makeBenchmarkTrace("twolf", 2009, 100'000)
                ->phaseChanges()));
    return 0;
}
