/**
 * @file
 * Quickstart: generate a synthetic SPEC2000-like workload, run it
 * on one customized core, then contest it between two cores, and
 * compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

int
main()
{
    using namespace contest;

    // 1. A workload: the gcc-like profile, 200k instructions,
    //    deterministic for the given seed.
    TracePtr trace = makeBenchmarkTrace("gcc", /*seed=*/42,
                                        /*num_insts=*/200'000);
    auto mix = trace->mix();
    std::printf("workload: %zu insts (%llu loads, %llu stores, "
                "%llu branches), %llu fine-grain phase changes\n",
                trace->size(),
                static_cast<unsigned long long>(mix.loads),
                static_cast<unsigned long long>(mix.stores),
                static_cast<unsigned long long>(mix.condBranches),
                static_cast<unsigned long long>(
                    trace->phaseChanges()));

    // 2. Run it alone on two customized cores from the paper's
    //    Appendix A palette.
    const CoreConfig &twolf_core = coreConfigByName("twolf");
    const CoreConfig &gzip_core = coreConfigByName("gzip");
    auto on_twolf = runSingle(twolf_core, trace);
    auto on_gzip = runSingle(gzip_core, trace);
    std::printf("alone on the twolf core: %.2f inst/ns "
                "(IPC %.2f at %.2f GHz)\n",
                on_twolf.ipt, on_twolf.stats.ipc(),
                twolf_core.frequencyGHz());
    std::printf("alone on the gzip  core: %.2f inst/ns "
                "(IPC %.2f at %.2f GHz)\n",
                on_gzip.ipt, on_gzip.stats.ipc(),
                gzip_core.frequencyGHz());

    // 3. Contest the two cores: both execute the same stream,
    //    results broadcast over 1ns global result buses, and the
    //    better core for each fine-grain region takes the lead.
    ContestSystem system({twolf_core, gzip_core}, trace);
    ContestResult contested = system.run();
    std::printf("contested (2-way):       %.2f inst/ns\n",
                contested.ipt);
    std::printf("  lead share twolf/gzip: %.0f%% / %.0f%%, "
                "%llu lead changes\n",
                contested.leadFraction[0] * 100.0,
                contested.leadFraction[1] * 100.0,
                static_cast<unsigned long long>(
                    contested.leadChanges));

    double best = std::max(on_twolf.ipt, on_gzip.ipt);
    std::printf("  speedup over the better single core: %+.1f%%\n",
                (contested.ipt / best - 1.0) * 100.0);
    return 0;
}
