/**
 * @file
 * Customizing a core for a workload with the XpScalar-style
 * simulated-annealing explorer (the paper's Section 5.1
 * methodology): the objective is the workload's IPT under the
 * technology model that ties clock period to structure sizes.
 *
 * Build & run:
 *   ./build/examples/explore_core [benchmark] [steps]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "contest/system.hh"
#include "explore/annealer.hh"
#include "trace/generator.hh"

int
main(int argc, char **argv)
{
    using namespace contest;

    std::string bench = argc > 1 ? argv[1] : "twolf";
    std::uint64_t steps =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60;

    // A short trace keeps each objective evaluation cheap; the
    // annealer runs hundreds of them.
    TracePtr trace = makeBenchmarkTrace(bench, 2009, 25'000);

    auto objective = [&](const CoreConfig &candidate) {
        return runSingle(candidate, trace).ipt;
    };

    CoreConfig start;
    start.name = bench + "-custom";
    applyTechnologyModel(start);
    double start_ipt = objective(start);
    std::printf("exploring a core for '%s' (%llu annealing steps)\n",
                bench.c_str(),
                static_cast<unsigned long long>(steps));
    std::printf("start: width %u, ROB %u, IQ %u, %.2f GHz -> "
                "%.3f inst/ns\n",
                start.width, start.robSize, start.iqSize,
                start.frequencyGHz(), start_ipt);

    AnnealConfig ac;
    ac.steps = StepCount{steps};
    ac.seed = 7;
    auto result = annealCoreConfig(objective, start, ac);

    const CoreConfig &best = result.best;
    std::printf("best:  width %u, ROB %u, IQ %u, LSQ %u, "
                "fe %u, sched %llu, wakeup %llu, %.2f GHz\n",
                best.width, best.robSize, best.iqSize, best.lsqSize,
                best.frontEndDepth,
                static_cast<unsigned long long>(best.schedDepth),
                static_cast<unsigned long long>(best.wakeupLatency),
                best.frequencyGHz());
    std::printf("       L1D %lluKB (%u-way, %uB blocks, %llu cyc), "
                "L2 %lluKB (%llu cyc)\n",
                static_cast<unsigned long long>(
                    best.l1d.capacityBytes() / 1024),
                best.l1d.assoc, best.l1d.blockBytes,
                static_cast<unsigned long long>(best.l1d.latency),
                static_cast<unsigned long long>(
                    best.l2.capacityBytes() / 1024),
                static_cast<unsigned long long>(best.l2.latency));
    std::printf("       %.3f inst/ns (%+.1f%% over the start point; "
                "%llu evaluations, %llu accepted)\n",
                result.bestScore,
                (result.bestScore / start_ipt - 1.0) * 100.0,
                static_cast<unsigned long long>(result.evaluations),
                static_cast<unsigned long long>(result.accepted));
    return 0;
}
