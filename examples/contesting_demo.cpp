/**
 * @file
 * A closer look at the contesting machinery: lagging distance,
 * injection, early branch resolution, the saturated-lagger
 * detector, and the effect of the GRB latency — the mechanics of
 * the paper's Section 4 made observable.
 *
 * Build & run:
 *   ./build/examples/contesting_demo [benchmark]
 */

#include <cstdio>
#include <string>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace
{

void
report(const char *label, const contest::ContestResult &r,
       const std::vector<std::string> &names)
{
    std::printf("%s\n", label);
    std::printf("  system IPT %.2f, %llu lead changes, "
                "%llu stores merged, %llu exceptions handled\n",
                r.ipt,
                static_cast<unsigned long long>(r.leadChanges),
                static_cast<unsigned long long>(r.mergedStores),
                static_cast<unsigned long long>(
                    r.exceptionsHandled));
    for (std::size_t c = 0; c < r.coreStats.size(); ++c) {
        const auto &s = r.coreStats[c];
        const auto &u = r.unitStats[c];
        std::printf("  core %zu (%-6s): led %4.1f%%, injected %6llu,"
                    " early-resolved %4llu, %s\n",
                    c, names[c].c_str(), r.leadFraction[c] * 100.0,
                    static_cast<unsigned long long>(s.injected),
                    static_cast<unsigned long long>(s.earlyResolves),
                    u.saturated ? "PARKED (saturated lagger)"
                                : "active");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace contest;
    std::string bench = argc > 1 ? argv[1] : "twolf";

    TracePtr trace = makeBenchmarkTrace(bench, 7, 200'000);
    std::printf("== contesting internals on '%s' ==\n\n",
                bench.c_str());

    // A well-matched pair: both cores lead substantial stretches.
    {
        std::vector<std::string> names{"twolf", "vpr"};
        ContestSystem sys({coreConfigByName(names[0]),
                           coreConfigByName(names[1])},
                          trace);
        report("[1] well-matched pair (twolf + vpr), 1ns GRB:",
               sys.run(), names);
    }

    // The same pair on a slow bus: the lagging distance grows and
    // fine-grain lead changes die off (the paper's Figure 8).
    {
        std::vector<std::string> names{"twolf", "vpr"};
        ContestConfig cfg;
        cfg.grbLatencyPs = TimePs{100'000}; // 100ns
        ContestSystem sys({coreConfigByName(names[0]),
                           coreConfigByName(names[1])},
                          trace, cfg);
        report("\n[2] same pair on a 100ns GRB:", sys.run(), names);
    }

    // A mismatched pair with a tiny FIFO: the slow core cannot
    // sustain the leader's retirement rate, overflows its result
    // FIFO, and is parked (Section 4.1.4).
    {
        std::vector<std::string> names{"vortex", "mcf"};
        ContestConfig cfg;
        cfg.fifoCapacity = 64;
        ContestSystem sys({coreConfigByName(names[0]),
                           coreConfigByName(names[1])},
                          trace, cfg);
        report("\n[3] mismatched pair (vortex + mcf), tiny FIFOs:",
               sys.run(), names);
    }

    // Three-way contesting: the paper's mechanism generalizes to N
    // cores, each broadcasting on its own GRB.
    {
        std::vector<std::string> names{"twolf", "gzip", "parser"};
        ContestSystem sys({coreConfigByName(names[0]),
                           coreConfigByName(names[1]),
                           coreConfigByName(names[2])},
                          trace);
        report("\n[4] three-way contest (twolf + gzip + parser):",
               sys.run(), names);
    }
    return 0;
}
